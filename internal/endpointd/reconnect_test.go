package endpointd

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/workload"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNewRejectsConnAndDialTogether(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	cfg := testConfig(t, proto.NewConn(a))
	cfg.Dial = func() (net.Conn, error) { return nil, errors.New("unused") }
	if _, err := New(cfg); err == nil {
		t.Error("config with both Conn and Dial accepted")
	}
}

// TestDialModeReconnects kills the first session's transport and checks
// the daemon dials again, re-Hellos, and resyncs its model state.
func TestDialModeReconnects(t *testing.T) {
	serverConns := make(chan net.Conn, 4)
	cfg := testConfig(t, nil)
	cfg.Conn = nil
	cfg.Dial = func() (net.Conn, error) {
		a, b := net.Pipe()
		serverConns <- b
		return a, nil
	}
	cfg.ReconnectMin = time.Millisecond
	cfg.ReconnectMax = 4 * time.Millisecond
	cfg.HoldDuration = time.Hour // keep the failsafe out of this test
	cfg.Metrics = obs.NewRegistry()
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ep.Run(ctx) }()

	// Session 1: Hello, then the immediate model-update resync.
	c1 := proto.NewConn(<-serverConns)
	env, err := c1.Recv()
	if err != nil || env.Kind != proto.KindHello {
		t.Fatalf("first message = %+v, %v", env, err)
	}
	env, err = c1.Recv()
	if err != nil || env.Kind != proto.KindModelUpdate {
		t.Fatalf("no immediate model resync after hello: %+v, %v", env, err)
	}
	// Kill the link mid-session.
	c1.Close()

	// Session 2: the daemon redials and replays Hello + resync.
	var c2 *proto.Conn
	select {
	case raw := <-serverConns:
		c2 = proto.NewConn(raw)
	case <-time.After(5 * time.Second):
		t.Fatal("no reconnect dial")
	}
	env, err = c2.Recv()
	if err != nil || env.Kind != proto.KindHello || env.Hello.JobID != "job-1" {
		t.Fatalf("reconnect hello = %+v, %v", env, err)
	}
	env, err = c2.Recv()
	if err != nil || env.Kind != proto.KindModelUpdate {
		t.Fatalf("no model resync after reconnect: %+v, %v", env, err)
	}

	reconnects := cfg.Metrics.CounterVec("endpoint_reconnects_total", "", "job").With("job-1")
	disconns := cfg.Metrics.CounterVec("endpoint_disconnects_total", "", "job").With("job-1")
	connected := cfg.Metrics.GaugeVec("endpoint_connected", "", "job").With("job-1")
	waitFor(t, func() bool { return reconnects.Value() >= 1 })
	if disconns.Value() < 1 {
		t.Errorf("disconnects = %d, want >= 1", disconns.Value())
	}
	if connected.Value() != 1 {
		t.Errorf("connected gauge = %v, want 1", connected.Value())
	}

	// Cancelling while connected ends the loop cleanly in dial mode.
	cancel()
	go func() {
		for {
			if _, err := c2.Recv(); err != nil {
				return
			}
		}
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run = %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// TestHoldThenFailsafeCap: a daemon that cannot reach the cluster holds
// the last cap for HoldDuration, then enforces the failsafe cap.
func TestHoldThenFailsafeCap(t *testing.T) {
	cfg := testConfig(t, nil)
	cfg.Conn = nil
	cfg.Dial = func() (net.Conn, error) { return nil, errors.New("cluster unreachable") }
	cfg.ReconnectMin = time.Millisecond
	cfg.ReconnectMax = 4 * time.Millisecond
	cfg.HoldDuration = 30 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ep.cfg.FailsafeCap != workload.NodeMinCap {
		t.Fatalf("default failsafe cap = %v, want %v", ep.cfg.FailsafeCap, workload.NodeMinCap)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ep.Run(ctx) }()

	// Within the hold window no policy is written.
	waitFor(t, func() bool {
		_, seq := cfg.GEOPM.ReadPolicy()
		return seq > 0
	})
	p, _ := cfg.GEOPM.ReadPolicy()
	if p.PowerCap != workload.NodeMinCap {
		t.Errorf("failsafe policy cap = %v, want %v", p.PowerCap, workload.NodeMinCap)
	}
	failsafes := cfg.Metrics.CounterVec("endpoint_failsafe_total", "", "job").With("job-1")
	if failsafes.Value() != 1 {
		t.Errorf("failsafe counter = %d, want 1", failsafes.Value())
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel while disconnected")
	}
}

// TestEndpointLeaksNoGoroutines runs a full churn cycle — sessions
// dropped by the peer, dial failures, cancellation — and checks every
// goroutine the daemon started has exited.
func TestEndpointLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	serverConns := make(chan net.Conn, 16)
	fails := 0
	cfg := testConfig(t, nil)
	cfg.Conn = nil
	cfg.Dial = func() (net.Conn, error) {
		// Every other dial fails, exercising the backoff path too.
		if fails++; fails%2 == 0 {
			return nil, errors.New("flaky network")
		}
		a, b := net.Pipe()
		serverConns <- b
		return a, nil
	}
	cfg.ReconnectMin = time.Millisecond
	cfg.ReconnectMax = 2 * time.Millisecond
	cfg.HoldDuration = 5 * time.Millisecond
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ep.Run(ctx) }()

	// Chew through three sessions, killing each from the server side.
	for i := 0; i < 3; i++ {
		var c *proto.Conn
		select {
		case raw := <-serverConns:
			c = proto.NewConn(raw)
		case <-time.After(5 * time.Second):
			t.Fatalf("session %d never dialed", i)
		}
		if _, err := c.Recv(); err != nil { // Hello
			t.Fatalf("session %d: %v", i, err)
		}
		c.Close()
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	// Drain any connection the daemon managed to open post-cancel.
	for {
		select {
		case raw := <-serverConns:
			raw.Close()
			continue
		default:
		}
		break
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}
