package endpointd

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/proto"
)

// TestSetBudgetContinuesCausalTrace checks the job tier's hop of the
// chain: a traced SetBudget yields a cap_apply span that is a child of
// the wire context, the policy carries the apply span's context into
// the shared-memory mailbox, and subsequent model updates echo the
// decision's context back up.
func TestSetBudgetContinuesCausalTrace(t *testing.T) {
	a, b := net.Pipe()
	cfg := testConfig(t, proto.NewConn(a))
	ring := obs.NewRing(128, "test")
	reg := obs.NewRegistry()
	cfg.Tracer = ring
	cfg.Metrics = reg
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster := proto.NewConn(b)
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ep.Run(ctx)

	updates := make(chan proto.Envelope, 64)
	go func() {
		for {
			env, err := cluster.Recv()
			if err != nil {
				return
			}
			if env.Kind == proto.KindModelUpdate {
				updates <- env
			}
		}
	}()

	// Decision context as the cluster tier would attach it. The root
	// timestamp is in the past, so the decision-to-apply latency is
	// positive and must be observed.
	decision := obs.TraceContext{
		TraceID:           "0123456789abcdef0123456789abcdef",
		SpanID:            "00aa11bb22cc33dd",
		RootStartUnixNano: time.Now().Add(-time.Second).UnixNano(),
	}
	if err := cluster.Send(proto.Envelope{Kind: proto.KindSetBudget, SetBudget: &proto.SetBudget{
		JobID: "job-1", PowerCapWatts: 150,
	}, Trace: &decision}); err != nil {
		t.Fatal(err)
	}

	// The policy write carries the apply span's context (same trace,
	// new span ID, unchanged root timestamp).
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, seq := cfg.GEOPM.ReadPolicy()
		if seq > 0 && p.PowerCap == 150 {
			if p.Trace.TraceID != decision.TraceID {
				t.Fatalf("policy trace = %q, want %q", p.Trace.TraceID, decision.TraceID)
			}
			if p.Trace.SpanID == decision.SpanID || p.Trace.SpanID == "" {
				t.Fatalf("policy span = %q, want a fresh cap_apply span", p.Trace.SpanID)
			}
			if p.Trace.RootStartUnixNano != decision.RootStartUnixNano {
				t.Fatalf("policy root_ns = %d, want %d", p.Trace.RootStartUnixNano, decision.RootStartUnixNano)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("traced policy never written: %+v seq %d", p, seq)
		}
		time.Sleep(time.Millisecond)
	}

	// The cap_apply span is a child of the wire context.
	var apply map[string]any
	for _, e := range ring.Events() {
		if e.Type == obs.EvSpan && e.Fields["name"] == "cap_apply" {
			apply = e.Fields
		}
	}
	if apply == nil {
		t.Fatal("no cap_apply span emitted")
	}
	if apply["parent"] != decision.SpanID || apply["trace"] != decision.TraceID {
		t.Errorf("cap_apply parent=%v trace=%v, want %q/%q",
			apply["parent"], apply["trace"], decision.SpanID, decision.TraceID)
	}

	// Model updates sent after the budget echo the decision context.
	for {
		select {
		case env := <-updates:
			if env.Trace == nil {
				continue // sent before the budget landed
			}
			if env.Trace.TraceID != decision.TraceID || env.Trace.SpanID != decision.SpanID {
				t.Fatalf("echoed context = %+v, want the decision's", env.Trace)
			}
			goto echoed
		case <-time.After(5 * time.Second):
			t.Fatal("no model update echoed the decision context")
		}
	}
echoed:

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `endpoint_decision_to_apply_seconds_count{job="job-1"} 1`) {
		t.Errorf("decision-to-apply histogram not observed:\n%s", sb.String())
	}
}

// TestUntracedSetBudgetStaysUntraced: without a wire context and
// without a tracer, the policy carries a zero context and updates omit
// the field — the backward-compatible degradation.
func TestUntracedSetBudgetStaysUntraced(t *testing.T) {
	a, b := net.Pipe()
	cfg := testConfig(t, proto.NewConn(a))
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster := proto.NewConn(b)
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ep.Run(ctx)

	updates := make(chan proto.Envelope, 64)
	go func() {
		for {
			env, err := cluster.Recv()
			if err != nil {
				return
			}
			if env.Kind == proto.KindModelUpdate {
				updates <- env
			}
		}
	}()

	if err := cluster.Send(proto.Envelope{Kind: proto.KindSetBudget, SetBudget: &proto.SetBudget{
		JobID: "job-1", PowerCapWatts: 120,
	}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, seq := cfg.GEOPM.ReadPolicy()
		if seq > 0 && p.PowerCap == 120 {
			if p.Trace.Valid() {
				t.Fatalf("untraced budget produced a traced policy: %+v", p.Trace)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("policy not written")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case env := <-updates:
		if env.Trace != nil {
			t.Fatalf("untraced update carries context: %+v", env.Trace)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no model update")
	}
}
