package endpointd

import (
	"context"
	"net"
	"path/filepath"
	"testing"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/units"
)

// TestRestoredCapAppliedBeforeFirstDial: a restarted endpoint re-imposes
// the persisted cap on the GEOPM mailbox before its first connection
// lands, so the job never runs uncapped during recovery, and its Hello
// carries the persisted controller epoch.
func TestRestoredCapAppliedBeforeFirstDial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "endpoint.state")
	if err := durable.SaveEndpointState(path, durable.EndpointState{
		Epoch: 4, CapW: 88, UpdatedMs: 123,
	}); err != nil {
		t.Fatal(err)
	}

	serverConns := make(chan net.Conn, 4)
	cfg := testConfig(t, nil)
	cfg.Conn = nil
	cfg.Dial = func() (net.Conn, error) {
		a, b := net.Pipe()
		serverConns <- b
		return a, nil
	}
	cfg.StatePath = path
	cfg.Metrics = obs.NewRegistry()
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ep.Run(ctx) }()

	c := proto.NewConn(<-serverConns)
	env, err := c.Recv()
	if err != nil || env.Kind != proto.KindHello {
		t.Fatalf("first message = %+v, %v", env, err)
	}
	if env.Epoch != 4 {
		t.Fatalf("hello epoch = %d, want persisted 4", env.Epoch)
	}
	// The restored cap was written before the dial: policy seq 1 is it.
	p, seq := cfg.GEOPM.ReadPolicy()
	if seq != 1 || p.PowerCap != 88 {
		t.Fatalf("policy = %+v seq %d, want restored 88 W at seq 1", p, seq)
	}
	restores := cfg.Metrics.CounterVec("endpoint_cap_restores_total", "", "job").With("job-1")
	if restores.Value() != 1 {
		t.Fatalf("cap restores = %d, want 1", restores.Value())
	}

	cancel()
	go func() {
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	<-done
}

// TestFailsafedStateRestoresFailsafeCap: an endpoint that crashed while
// failsafed comes back failsafed, not at the stale pre-failsafe cap.
func TestFailsafedStateRestoresFailsafeCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "endpoint.state")
	if err := durable.SaveEndpointState(path, durable.EndpointState{
		Epoch: 2, CapW: 100, Failsafed: true,
	}); err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cfg := testConfig(t, proto.NewConn(a))
	cfg.StatePath = path
	cfg.FailsafeCap = units.Power(61)
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ep.restoreState()
	p, seq := cfg.GEOPM.ReadPolicy()
	if seq != 1 || p.PowerCap != 61 {
		t.Fatalf("policy = %+v seq %d, want failsafe 61 W", p, seq)
	}
}

// TestStaleControllerCapFenced: after a failover, SetBudget traffic
// stamped with a superseded controller epoch is dropped; the newer
// generation's caps apply and bump the persisted epoch.
func TestStaleControllerCapFenced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "endpoint.state")
	a, b := net.Pipe()
	cfg := testConfig(t, proto.NewConn(a))
	cfg.StatePath = path
	cfg.Metrics = obs.NewRegistry()
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ep.Run(ctx) }()

	c := proto.NewConn(b)
	for {
		env, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if env.Kind == proto.KindHello {
			break
		}
	}
	drain := make(chan struct{})
	go func() {
		defer close(drain)
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()

	send := func(capW float64, epoch uint64) {
		t.Helper()
		if err := c.Send(proto.Envelope{Kind: proto.KindSetBudget, SetBudget: &proto.SetBudget{
			JobID: "job-1", PowerCapWatts: capW,
		}, Epoch: epoch}); err != nil {
			t.Fatal(err)
		}
	}
	policyCap := func() units.Power {
		p, _ := cfg.GEOPM.ReadPolicy()
		return p.PowerCap
	}

	// Epoch 2 applies, then epoch 3 (the failover successor) applies.
	send(80, 2)
	waitFor(t, func() bool { return policyCap() == 80 })
	send(100, 3)
	waitFor(t, func() bool { return policyCap() == 100 })

	// The superseded epoch-2 controller keeps talking: dropped.
	send(55, 2)
	fenced := cfg.Metrics.CounterVec("endpoint_fenced_total", "", "job").With("job-1")
	waitFor(t, func() bool { return fenced.Value() == 1 })
	if got := policyCap(); got != 100 {
		t.Fatalf("policy cap after stale SetBudget = %v, want 100 unchanged", got)
	}
	// Unfenced traffic (epoch 0, an old binary) still applies.
	send(90, 0)
	waitFor(t, func() bool { return policyCap() == 90 })

	// The highest epoch heard was persisted for the next restart.
	waitFor(t, func() bool {
		st, err := durable.LoadEndpointState(path)
		return err == nil && st.Epoch == 3 && st.CapW == 90
	})

	cancel()
	<-drain
	<-done
}
