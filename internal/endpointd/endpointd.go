// Package endpointd implements the ANOR job-tier endpoint process (§4):
// the software layer that bridges a job's GEOPM endpoint to the cluster
// manager over the wire protocol. One endpoint daemon runs per job (on one
// of the job's compute nodes in the paper's deployment).
//
// Downward, it receives SetBudget messages and writes them as GEOPM
// policies for the job's agent tree to enforce. Upward, it polls the GEOPM
// endpoint for samples, feeds them to the job's power modeler, and
// periodically sends the current power-performance model and measured
// power to the cluster tier.
package endpointd

import (
	"context"
	"errors"
	"net"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/geopm"
	"repro/internal/ledger"
	"repro/internal/modeler"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// DefaultPeriod is the endpoint's sampling/reporting period: faster than
// the cluster tier's rebudget loop, slower than the GEOPM agent's control
// loop, matching the tiered cadence of §4.
const DefaultPeriod = time.Second

// Config parameterizes an endpoint daemon.
type Config struct {
	// JobID identifies the job to the cluster manager. Required.
	JobID string
	// TypeName is the job type claimed at Hello (the scheduler's
	// classification — possibly wrong, possibly empty for unknown).
	TypeName string
	// Nodes is the job's node count.
	Nodes int
	// Conn is the connection to the cluster manager. Exactly one of Conn
	// and Dial is required. With Conn the daemon services that single
	// connection and exits on its first transport error (the original
	// behavior, right for in-process experiments over net.Pipe).
	Conn *proto.Conn
	// Dial, when set, puts the daemon in reconnecting mode: it owns the
	// connection lifecycle, dialing (and re-dialing with exponential
	// backoff + jitter) whenever the link drops, re-sending Hello and an
	// immediate model update to resync cluster-tier state on every new
	// connection.
	Dial func() (net.Conn, error)
	// ReconnectMin and ReconnectMax bound the backoff between dial
	// attempts (defaults 500 ms and 10 s). The wait doubles per failure
	// and carries multiplicative jitter to avoid thundering herds.
	ReconnectMin, ReconnectMax time.Duration
	// ReconnectSeed seeds the jitter stream, so chaos tests reproduce.
	ReconnectSeed uint64
	// HoldDuration is how long a disconnected daemon keeps enforcing the
	// last received cap before failing safe (default 3× Period).
	HoldDuration time.Duration
	// FailsafeCap is the per-node cap enforced after HoldDuration without
	// a cluster connection — a power level safe against any budget the
	// cluster tier could be tracking (default the node minimum cap).
	FailsafeCap units.Power
	// ReadTimeout bounds each wire receive while connected; a silent peer
	// past the deadline counts as a dropped link (reconnecting mode) or a
	// fatal error (single-connection mode). Zero disables.
	ReadTimeout time.Duration
	// GEOPM is the shared mailbox with the job's root agent. Required.
	GEOPM *geopm.Endpoint
	// Modeler learns the job's power-performance model. Required.
	Modeler *modeler.Modeler
	// Clock paces the report loop. Required.
	Clock clock.Clock
	// Period overrides DefaultPeriod when positive.
	Period time.Duration
	// Metrics, when non-nil, receives the endpoint's operational metrics
	// (epoch rate, cap-application latency, model-fit residuals). Nil
	// disables with no measurable overhead.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives structured epoch-batch, model-refit,
	// and budget-received events.
	Tracer *obs.Tracer
	// Telemetry, when non-nil, retains per-sample power/cap/epoch-rate
	// series under job-labeled names (endpoint_power_watts{job="..."}),
	// so one store — and one flight recording — can carry a whole fleet
	// of endpoints. Nil disables with no overhead.
	Telemetry *telemetry.Store
	// StatePath, when non-empty, names the endpoint's durable state file:
	// the highest controller epoch heard, the last applied per-node cap,
	// and the failsafe flag, rewritten atomically on every change. On
	// restart the recorded cap regime is re-applied to the GEOPM mailbox
	// before the first dial, and the epoch fences SetBudget traffic from
	// superseded controllers. Empty disables persistence and fencing
	// storage (in-session fencing still applies).
	StatePath string
	// Ledger, when non-nil, receives this job's energy attribution: a
	// record opens when Run starts, accrues every fresh GEOPM sample's
	// power at the sample's own timestamp, and closes as Detached when
	// Run returns. This is the job-tier view — sample-resolution, no
	// idle pool — complementing the cluster tier's tick-resolution
	// accounting. Nil disables with no overhead.
	Ledger *ledger.Ledger
	// Log receives leveled diagnostics. Nil disables.
	Log *obs.Logger
}

// epMetrics holds the endpoint's instruments, bound to the job label at
// construction. Every field is nil — a no-op sink — without a registry.
type epMetrics struct {
	epochs      *obs.Counter
	rate        *obs.Gauge
	capApply    *obs.Histogram
	decision    *obs.Histogram
	capsRecv    *obs.Counter
	updates     *obs.Counter
	refits      *obs.Counter
	r2          *obs.Gauge
	residual    *obs.Gauge
	power       *obs.Gauge
	cap         *obs.Gauge
	reconnects  *obs.Counter
	disconns    *obs.Counter
	failsafes   *obs.Counter
	connected   *obs.Gauge
	powerDist   *obs.Histogram
	fenced      *obs.Counter
	capRestores *obs.Counter
}

func newEpMetrics(r *obs.Registry, job string) epMetrics {
	if r == nil {
		return epMetrics{}
	}
	return epMetrics{
		epochs:      r.CounterVec("endpoint_epochs_total", "Application epochs observed via GEOPM samples.", "job").With(job),
		rate:        r.GaugeVec("endpoint_epoch_rate_hz", "Epoch completion rate over the last sample span.", "job").With(job),
		capApply:    r.HistogramVec("endpoint_cap_apply_seconds", "Latency from SetBudget receipt to the GEOPM policy write.", obs.DefLatencyBuckets, "job").With(job),
		decision:    r.HistogramVec("endpoint_decision_to_apply_seconds", "Latency from the cluster-tier budget decision to the GEOPM policy write, from propagated trace timestamps.", obs.DefLatencyBuckets, "job").With(job),
		capsRecv:    r.CounterVec("endpoint_caps_received_total", "SetBudget messages received from the cluster tier.", "job").With(job),
		updates:     r.CounterVec("endpoint_model_updates_sent_total", "Model updates reported to the cluster tier.", "job").With(job),
		refits:      r.CounterVec("endpoint_model_refits_total", "Accepted online model re-fits.", "job").With(job),
		r2:          r.GaugeVec("endpoint_model_r2", "R² of the latest accepted model fit.", "job").With(job),
		residual:    r.GaugeVec("endpoint_model_fit_residual", "1 - R² of the latest accepted model fit.", "job").With(job),
		power:       r.GaugeVec("endpoint_power_watts", "Job power from the latest GEOPM sample.", "job").With(job),
		cap:         r.GaugeVec("endpoint_cap_watts", "Per-node cap from the latest GEOPM sample.", "job").With(job),
		reconnects:  r.CounterVec("endpoint_reconnects_total", "Successful re-dials to the cluster manager after a dropped link.", "job").With(job),
		disconns:    r.CounterVec("endpoint_disconnects_total", "Cluster-manager connections lost to transport errors.", "job").With(job),
		failsafes:   r.CounterVec("endpoint_failsafe_total", "Failsafe cap enforcements after exhausting the disconnected hold window.", "job").With(job),
		connected:   r.GaugeVec("endpoint_connected", "1 while a cluster-manager connection is up, 0 while reconnecting.", "job").With(job),
		powerDist:   r.HistogramVec("endpoint_power_watts_dist", "Distribution of job power across GEOPM samples.", obs.DefPowerBuckets, "job").With(job),
		fenced:      r.CounterVec("endpoint_fenced_total", "SetBudget messages dropped because they carried a stale controller epoch.", "job").With(job),
		capRestores: r.CounterVec("endpoint_cap_restores_total", "Cap regimes re-applied from the persisted state file at startup.", "job").With(job),
	}
}

// epTelemetry holds the endpoint's retained-series handles, job-labeled
// at construction; all nil without a store.
type epTelemetry struct {
	power *telemetry.Series
	cap   *telemetry.Series
	rate  *telemetry.Series
}

func newEpTelemetry(st *telemetry.Store, job string) epTelemetry {
	if st == nil {
		return epTelemetry{}
	}
	return epTelemetry{
		power: st.Series(telemetry.Label("endpoint_power_watts", "job", job)),
		cap:   st.Series(telemetry.Label("endpoint_cap_watts", "job", job)),
		rate:  st.Series(telemetry.Label("endpoint_epoch_rate_hz", "job", job)),
	}
}

// Endpoint is the job-tier daemon.
type Endpoint struct {
	cfg           Config
	met           epMetrics
	tel           epTelemetry
	lastSampleSeq uint64
	lastEpochs    int64
	lastEpochTime time.Time
	lastRefits    int
	led           ledger.Handle

	// mu guards lastDecision, written by the receive goroutine and read
	// by the report loop.
	mu sync.Mutex
	// lastDecision is the trace context of the budget decision whose cap
	// the job currently runs under; model updates echo it upward so the
	// cluster tier (and offline analysis) can close the decision →
	// actuation → feedback loop.
	lastDecision obs.TraceContext
	// epoch is the highest controller-fencing epoch heard (also under
	// mu); lastCapW/failsafed mirror the durable state file.
	epoch     uint64
	lastCapW  float64
	failsafed bool
}

// New validates the configuration and constructs an endpoint daemon.
func New(cfg Config) (*Endpoint, error) {
	switch {
	case cfg.JobID == "":
		return nil, errors.New("endpointd: config requires a job ID")
	case cfg.Conn == nil && cfg.Dial == nil:
		return nil, errors.New("endpointd: config requires a connection or a dialer")
	case cfg.Conn != nil && cfg.Dial != nil:
		return nil, errors.New("endpointd: config takes a connection or a dialer, not both")
	case cfg.GEOPM == nil:
		return nil, errors.New("endpointd: config requires a GEOPM endpoint")
	case cfg.Modeler == nil:
		return nil, errors.New("endpointd: config requires a modeler")
	case cfg.Clock == nil:
		return nil, errors.New("endpointd: config requires a clock")
	}
	if cfg.Period <= 0 {
		cfg.Period = DefaultPeriod
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 500 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 10 * time.Second
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = cfg.ReconnectMin
	}
	if cfg.HoldDuration <= 0 {
		cfg.HoldDuration = 3 * cfg.Period
	}
	if cfg.FailsafeCap <= 0 {
		cfg.FailsafeCap = workload.NodeMinCap
	}
	cfg.Log = cfg.Log.WithJob(cfg.JobID)
	return &Endpoint{
		cfg: cfg,
		met: newEpMetrics(cfg.Metrics, cfg.JobID),
		tel: newEpTelemetry(cfg.Telemetry, cfg.JobID),
	}, nil
}

// Run services the cluster-manager link until ctx is cancelled. With a
// fixed Conn it runs one session and returns its first transport error.
// With a Dial it loops forever: dial (exponential backoff + jitter on
// failure), Hello + immediate model update to resync the cluster tier,
// serve the session, and on any transport error start over — holding the
// last received cap for HoldDuration, then failing safe to FailsafeCap
// until the link returns.
func (e *Endpoint) Run(ctx context.Context) error {
	e.restoreState()
	if e.cfg.Ledger != nil {
		ms := e.cfg.Clock.Now().UnixMilli()
		e.led = e.cfg.Ledger.Open(ledger.JobMeta{
			ID: e.cfg.JobID, Type: e.cfg.TypeName, Nodes: e.cfg.Nodes, SubmitMs: ms,
		}, ms)
		defer func() { e.cfg.Ledger.Close(e.led, e.cfg.Clock.Now().UnixMilli(), ledger.Detached) }()
	}
	// The report loop runs under a pprof label so continuous profiles
	// attribute per-job sampling/reporting time to this endpoint.
	var err error
	pprof.Do(ctx, pprof.Labels("subsystem", "endpointd", "job", e.cfg.JobID), func(ctx context.Context) {
		err = e.run(ctx)
	})
	return err
}

func (e *Endpoint) run(ctx context.Context) error {
	if e.cfg.Dial == nil {
		e.met.connected.Set(1)
		defer e.met.connected.Set(0)
		return e.runSession(ctx, e.cfg.Conn)
	}

	rng := stats.NewRNG(e.cfg.ReconnectSeed)
	for first := true; ; first = false {
		c, err := e.connect(ctx, rng, first)
		if c == nil {
			return err // ctx cancelled while disconnected
		}
		err = e.runSession(ctx, c)
		if ctx.Err() != nil || err == nil {
			return nil
		}
		e.met.disconns.Inc()
		e.cfg.Log.Warnf("cluster connection lost: %v", err)
	}
}

// connect dials until a connection lands or ctx is cancelled, pacing
// attempts with exponential backoff + jitter and enforcing the
// hold-then-failsafe cap policy while disconnected. first marks the
// daemon's initial connection, which is not a reconnect. It returns nil
// when ctx ends first.
func (e *Endpoint) connect(ctx context.Context, rng *stats.RNG, first bool) (*proto.Conn, error) {
	e.met.connected.Set(0)
	lostAt := e.cfg.Clock.Now()
	failsafed := false
	backoff := e.cfg.ReconnectMin
	for {
		if ctx.Err() != nil {
			return nil, nil
		}
		if !failsafed && e.cfg.Clock.Now().Sub(lostAt) >= e.cfg.HoldDuration {
			// The hold window expired with no cluster in sight: drop to a
			// cap safe under any budget the cluster could be tracking.
			e.cfg.GEOPM.WritePolicy(geopm.Policy{PowerCap: e.cfg.FailsafeCap})
			e.met.failsafes.Inc()
			failsafed = true
			e.mu.Lock()
			e.failsafed = true
			e.mu.Unlock()
			e.persistState()
			e.cfg.Log.Warnf("hold window %v expired, enforcing failsafe cap %.0f W/node",
				e.cfg.HoldDuration, e.cfg.FailsafeCap.Watts())
		}
		raw, err := e.cfg.Dial()
		if err == nil {
			if !first {
				e.met.reconnects.Inc()
			}
			e.met.connected.Set(1)
			return proto.NewConn(raw), nil
		}
		e.cfg.Log.Debugf("dial failed (%v), retrying in ~%v", err, backoff)
		// Jitter in [½·backoff, backoff) decorrelates a fleet of
		// endpoints reconnecting after one shared outage.
		wait := backoff/2 + time.Duration(rng.Float64()*float64(backoff/2))
		// Never sleep through the failsafe moment.
		if !failsafed {
			if until := e.cfg.HoldDuration - e.cfg.Clock.Now().Sub(lostAt); until > 0 && wait > until {
				wait = until
			}
		}
		select {
		case <-ctx.Done():
			return nil, nil
		case <-e.cfg.Clock.After(wait):
		}
		if backoff *= 2; backoff > e.cfg.ReconnectMax {
			backoff = e.cfg.ReconnectMax
		}
	}
}

// runSession sends Hello (plus an immediate model update so a fresh
// cluster tier resyncs this job's model state at once) and services one
// connection: budgets apply on receipt, pings are answered, model updates
// flow on the configured period. It returns nil when ctx ended the
// session (Goodbye sent) and the transport error otherwise.
func (e *Endpoint) runSession(ctx context.Context, c *proto.Conn) error {
	c.SetTimeouts(e.cfg.ReadTimeout, 0)
	if err := c.Send(proto.Envelope{Kind: proto.KindHello, Hello: &proto.Hello{
		JobID: e.cfg.JobID, TypeName: e.cfg.TypeName, Nodes: e.cfg.Nodes,
	}, Epoch: e.curEpoch()}); err != nil {
		c.Close()
		return err
	}
	if err := e.tick(c); err != nil {
		c.Close()
		return err
	}

	recvErr := make(chan error, 1)
	go func() {
		for {
			env, err := c.Recv()
			if err != nil {
				recvErr <- err
				return
			}
			switch env.Kind {
			case proto.KindSetBudget:
				if e.noteEpoch(env.Epoch) {
					e.cfg.Log.Warnf("dropping cap %.0f W from superseded controller (epoch %d < %d)",
						env.SetBudget.PowerCapWatts, env.Epoch, e.curEpoch())
					continue
				}
				e.applyBudget(env)
			case proto.KindPing:
				e.noteEpoch(env.Epoch)
				pong := proto.PongFor(*env.Ping)
				_ = c.Send(proto.Envelope{Kind: proto.KindPong, Pong: &pong})
			}
		}
	}()

	for {
		select {
		case <-ctx.Done():
			_ = c.Send(proto.Envelope{Kind: proto.KindGoodbye, Goodbye: &proto.Goodbye{JobID: e.cfg.JobID}})
			err := c.Close()
			<-recvErr // receiver exits once the transport closes
			if e.cfg.Dial != nil {
				return nil
			}
			return err
		case err := <-recvErr:
			c.Close()
			return err
		case <-e.cfg.Clock.After(e.cfg.Period):
			if err := e.tick(c); err != nil {
				c.Close()
				<-recvErr
				return err
			}
		}
	}
}

// applyBudget services one SetBudget: it continues the decision's
// causal trace through a cap-apply span, hands the context down the
// shared-memory mailbox for the agent tree's fan-out span, and records
// the decision so upward model updates can reference it.
func (e *Endpoint) applyBudget(env proto.Envelope) {
	decision := env.TraceContext()
	sp := e.cfg.Tracer.StartSpan("cap_apply", decision)
	sp.SetJob(e.cfg.JobID).Set("cap_w", env.SetBudget.PowerCapWatts)

	// The policy carries the apply span's context when tracing is on,
	// and otherwise passes the wire context through unchanged so a
	// traced cluster tier still reaches the fan-out of an untraced job.
	pctx := sp.Context()
	if !pctx.Valid() {
		pctx = decision
	}
	var recvAt time.Time
	if e.met.capApply != nil {
		recvAt = time.Now()
	}
	e.cfg.GEOPM.WritePolicy(geopm.Policy{
		PowerCap: units.Power(env.SetBudget.PowerCapWatts),
		Trace:    pctx,
	})
	if e.met.capApply != nil {
		e.met.capApply.Observe(time.Since(recvAt).Seconds())
	}
	if root := decision.RootStartUnixNano; root > 0 {
		if lat := float64(time.Now().UnixNano()-root) / 1e9; lat >= 0 {
			e.met.decision.Observe(lat)
		}
	}
	sp.End()
	e.met.capsRecv.Inc()

	e.mu.Lock()
	e.lastDecision = decision
	e.lastCapW = env.SetBudget.PowerCapWatts
	e.failsafed = false
	e.mu.Unlock()
	e.persistState()

	e.cfg.Log.Debugf("budget received: %.0f W/node", env.SetBudget.PowerCapWatts)
	if e.cfg.Tracer.Enabled() {
		fields := obs.F{"cap_w": env.SetBudget.PowerCapWatts}
		if decision.Valid() {
			fields["trace"] = decision.TraceID
		}
		e.cfg.Tracer.Emit(obs.Event{Type: obs.EvBudgetReceived, Job: e.cfg.JobID, Fields: fields})
	}
}

// tick folds any fresh GEOPM sample into the modeler and reports the
// current model to the cluster tier over c.
func (e *Endpoint) tick(c *proto.Conn) error {
	sample, seq := e.cfg.GEOPM.ReadSample()
	if seq != 0 && seq != e.lastSampleSeq {
		e.lastSampleSeq = seq
		e.cfg.Modeler.Observe(sample)
		e.observeSample(sample)
	}

	mdl := e.cfg.Modeler.Model()
	update := proto.ModelUpdateFor(e.cfg.JobID, mdl, e.cfg.Modeler.Trained())
	update.Epochs = sample.EpochCount
	update.PowerWatts = sample.Power.Watts()
	update.TimestampUnixNano = sample.Time.UnixNano()
	env := proto.Envelope{Kind: proto.KindModelUpdate, ModelUpdate: &update}
	// Close the causal loop: the update reflects behavior under the last
	// applied budget, so it carries that decision's context back up.
	e.mu.Lock()
	if e.lastDecision.Valid() {
		d := e.lastDecision
		env.Trace = &d
	}
	e.mu.Unlock()
	if err := c.Send(env); err != nil {
		return err
	}
	e.met.updates.Inc()
	return nil
}

// observeSample records epoch-rate and model-fit telemetry for one fresh
// GEOPM sample.
func (e *Endpoint) observeSample(sample geopm.Sample) {
	e.met.power.Set(sample.Power.Watts())
	e.met.cap.Set(sample.PowerCap.Watts())
	e.met.powerDist.Observe(sample.Power.Watts())
	e.tel.power.Record(sample.Time, sample.Power.Watts())
	e.tel.cap.Record(sample.Time, sample.PowerCap.Watts())
	if e.cfg.Ledger != nil {
		// The sample's PowerCap is per node; the job is throttled while
		// its whole-job draw has reached the fanned-out cap.
		throttled := sample.PowerCap > 0 && sample.Power >= sample.PowerCap*units.Power(e.cfg.Nodes)
		e.cfg.Ledger.SetPower(e.led, sample.Time.UnixMilli(), sample.Power.Watts(), throttled)
	}

	if delta := sample.EpochCount - e.lastEpochs; delta > 0 {
		e.met.epochs.Add(uint64(delta))
		if !e.lastEpochTime.IsZero() {
			if span := sample.Time.Sub(e.lastEpochTime).Seconds(); span > 0 {
				e.met.rate.Set(float64(delta) / span)
				e.tel.rate.Record(sample.Time, float64(delta)/span)
			}
		}
		if e.cfg.Tracer.Enabled() {
			e.cfg.Tracer.Emit(obs.Event{Type: obs.EvEpochBatch, Job: e.cfg.JobID, Fields: obs.F{
				"epochs": delta, "total": sample.EpochCount,
				"cap_w": sample.PowerCap.Watts(), "power_w": sample.Power.Watts(),
			}})
		}
		e.lastEpochs = sample.EpochCount
		e.lastEpochTime = sample.Time
	}

	if refits := e.cfg.Modeler.Refits(); refits > e.lastRefits {
		r2 := e.cfg.Modeler.R2()
		e.met.refits.Add(uint64(refits - e.lastRefits))
		e.met.r2.Set(r2)
		e.met.residual.Set(1 - r2)
		e.cfg.Log.Debugf("model refit #%d accepted, R²=%.3f", refits, r2)
		if e.cfg.Tracer.Enabled() {
			e.cfg.Tracer.Emit(obs.Event{Type: obs.EvModelRefit, Job: e.cfg.JobID, Fields: obs.F{
				"refits": refits, "r2": r2, "residual": 1 - r2,
			}})
		}
		e.lastRefits = refits
	}
}
