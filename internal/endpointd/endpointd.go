// Package endpointd implements the ANOR job-tier endpoint process (§4):
// the software layer that bridges a job's GEOPM endpoint to the cluster
// manager over the wire protocol. One endpoint daemon runs per job (on one
// of the job's compute nodes in the paper's deployment).
//
// Downward, it receives SetBudget messages and writes them as GEOPM
// policies for the job's agent tree to enforce. Upward, it polls the GEOPM
// endpoint for samples, feeds them to the job's power modeler, and
// periodically sends the current power-performance model and measured
// power to the cluster tier.
package endpointd

import (
	"context"
	"errors"
	"time"

	"repro/internal/clock"
	"repro/internal/geopm"
	"repro/internal/modeler"
	"repro/internal/proto"
	"repro/internal/units"
)

// DefaultPeriod is the endpoint's sampling/reporting period: faster than
// the cluster tier's rebudget loop, slower than the GEOPM agent's control
// loop, matching the tiered cadence of §4.
const DefaultPeriod = time.Second

// Config parameterizes an endpoint daemon.
type Config struct {
	// JobID identifies the job to the cluster manager. Required.
	JobID string
	// TypeName is the job type claimed at Hello (the scheduler's
	// classification — possibly wrong, possibly empty for unknown).
	TypeName string
	// Nodes is the job's node count.
	Nodes int
	// Conn is the connection to the cluster manager. Required.
	Conn *proto.Conn
	// GEOPM is the shared mailbox with the job's root agent. Required.
	GEOPM *geopm.Endpoint
	// Modeler learns the job's power-performance model. Required.
	Modeler *modeler.Modeler
	// Clock paces the report loop. Required.
	Clock clock.Clock
	// Period overrides DefaultPeriod when positive.
	Period time.Duration
}

// Endpoint is the job-tier daemon.
type Endpoint struct {
	cfg           Config
	lastSampleSeq uint64
}

// New validates the configuration and constructs an endpoint daemon.
func New(cfg Config) (*Endpoint, error) {
	switch {
	case cfg.JobID == "":
		return nil, errors.New("endpointd: config requires a job ID")
	case cfg.Conn == nil:
		return nil, errors.New("endpointd: config requires a connection")
	case cfg.GEOPM == nil:
		return nil, errors.New("endpointd: config requires a GEOPM endpoint")
	case cfg.Modeler == nil:
		return nil, errors.New("endpointd: config requires a modeler")
	case cfg.Clock == nil:
		return nil, errors.New("endpointd: config requires a clock")
	}
	if cfg.Period <= 0 {
		cfg.Period = DefaultPeriod
	}
	return &Endpoint{cfg: cfg}, nil
}

// Run sends Hello, services the connection until ctx is cancelled, then
// sends Goodbye and closes the connection. Budget messages apply
// immediately on receipt; model updates flow on the configured period.
func (e *Endpoint) Run(ctx context.Context) error {
	c := e.cfg.Conn
	if err := c.Send(proto.Envelope{Kind: proto.KindHello, Hello: &proto.Hello{
		JobID: e.cfg.JobID, TypeName: e.cfg.TypeName, Nodes: e.cfg.Nodes,
	}}); err != nil {
		return err
	}

	recvErr := make(chan error, 1)
	go func() {
		for {
			env, err := c.Recv()
			if err != nil {
				recvErr <- err
				return
			}
			if env.Kind == proto.KindSetBudget {
				e.cfg.GEOPM.WritePolicy(geopm.Policy{
					PowerCap: units.Power(env.SetBudget.PowerCapWatts),
				})
			}
		}
	}()

	for {
		select {
		case <-ctx.Done():
			_ = c.Send(proto.Envelope{Kind: proto.KindGoodbye, Goodbye: &proto.Goodbye{JobID: e.cfg.JobID}})
			err := c.Close()
			<-recvErr // receiver exits once the transport closes
			return err
		case err := <-recvErr:
			c.Close()
			return err
		case <-e.cfg.Clock.After(e.cfg.Period):
			if err := e.tick(); err != nil {
				c.Close()
				<-recvErr
				return err
			}
		}
	}
}

// tick folds any fresh GEOPM sample into the modeler and reports the
// current model to the cluster tier.
func (e *Endpoint) tick() error {
	sample, seq := e.cfg.GEOPM.ReadSample()
	if seq != 0 && seq != e.lastSampleSeq {
		e.lastSampleSeq = seq
		e.cfg.Modeler.Observe(sample)
	}

	mdl := e.cfg.Modeler.Model()
	update := proto.ModelUpdateFor(e.cfg.JobID, mdl, e.cfg.Modeler.Trained())
	update.Epochs = sample.EpochCount
	update.PowerWatts = sample.Power.Watts()
	update.TimestampUnixNano = sample.Time.UnixNano()
	return e.cfg.Conn.Send(proto.Envelope{Kind: proto.KindModelUpdate, ModelUpdate: &update})
}
