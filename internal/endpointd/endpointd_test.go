package endpointd

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/geopm"
	"repro/internal/modeler"
	"repro/internal/proto"
	"repro/internal/units"
	"repro/internal/workload"
)

func newTestModeler(t *testing.T) *modeler.Modeler {
	t.Helper()
	m, err := modeler.New(modeler.Config{Default: workload.MustByName("is").Model()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testConfig(t *testing.T, conn *proto.Conn) Config {
	t.Helper()
	return Config{
		JobID:    "job-1",
		TypeName: "is.D.32",
		Nodes:    2,
		Conn:     conn,
		GEOPM:    geopm.NewEndpoint(),
		Modeler:  newTestModeler(t),
		Clock:    clock.Real{},
		Period:   5 * time.Millisecond,
	}
}

func TestNewValidation(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	good := testConfig(t, proto.NewConn(a))
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"job id":  func(c *Config) { c.JobID = "" },
		"conn":    func(c *Config) { c.Conn = nil },
		"geopm":   func(c *Config) { c.GEOPM = nil },
		"modeler": func(c *Config) { c.Modeler = nil },
		"clock":   func(c *Config) { c.Clock = nil },
	} {
		cfg := testConfig(t, proto.NewConn(a))
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("config without %s accepted", name)
		}
	}
}

func TestHelloAndModelUpdatesFlow(t *testing.T) {
	a, b := net.Pipe()
	cfg := testConfig(t, proto.NewConn(a))
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster := proto.NewConn(b)
	defer cluster.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ep.Run(ctx) }()

	first, err := cluster.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if first.Kind != proto.KindHello || first.Hello.JobID != "job-1" || first.Hello.TypeName != "is.D.32" || first.Hello.Nodes != 2 {
		t.Fatalf("first message = %+v", first)
	}

	// Publish a GEOPM sample, then expect a model update carrying its
	// power and epoch count.
	cfg.GEOPM.WriteSample(geopm.Sample{EpochCount: 3, Power: 333, PowerCap: 280, Time: time.Now()})
	deadline := time.Now().Add(5 * time.Second)
	for {
		env, err := cluster.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if env.Kind == proto.KindModelUpdate && env.ModelUpdate.Epochs == 3 {
			if env.ModelUpdate.PowerWatts != 333 {
				t.Errorf("power = %v", env.ModelUpdate.PowerWatts)
			}
			if env.ModelUpdate.Trained {
				t.Error("untrained modeler reported trained")
			}
			if env.ModelUpdate.Model() != cfg.Modeler.Model() {
				t.Error("update model differs from modeler's")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no model update with sample data")
		}
	}

	cancel()
	// Drain until Goodbye.
	for {
		env, err := cluster.Recv()
		if err != nil {
			t.Fatalf("connection errored before goodbye: %v", err)
		}
		if env.Kind == proto.KindGoodbye {
			if env.Goodbye.JobID != "job-1" {
				t.Errorf("goodbye = %+v", env.Goodbye)
			}
			break
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestSetBudgetWritesGEOPMPolicy(t *testing.T) {
	a, b := net.Pipe()
	cfg := testConfig(t, proto.NewConn(a))
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster := proto.NewConn(b)
	defer cluster.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ep.Run(ctx)

	// Consume Hello and keep draining updates.
	go func() {
		for {
			if _, err := cluster.Recv(); err != nil {
				return
			}
		}
	}()

	if err := cluster.Send(proto.Envelope{Kind: proto.KindSetBudget, SetBudget: &proto.SetBudget{
		JobID: "job-1", PowerCapWatts: 171,
	}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, seq := cfg.GEOPM.ReadPolicy()
		if seq > 0 && p.PowerCap == 171 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("policy not written: %+v seq %d", p, seq)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRunReturnsOnPeerClose(t *testing.T) {
	a, b := net.Pipe()
	cfg := testConfig(t, proto.NewConn(a))
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster := proto.NewConn(b)

	done := make(chan error, 1)
	go func() { done <- ep.Run(context.Background()) }()
	if _, err := cluster.Recv(); err != nil { // Hello
		t.Fatal(err)
	}
	cluster.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Run returned nil after peer close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after peer close")
	}
}

func TestModelerTrainsThroughEndpoint(t *testing.T) {
	a, b := net.Pipe()
	cfg := testConfig(t, proto.NewConn(a))
	cfg.Modeler = func() *modeler.Modeler {
		m, err := modeler.New(modeler.Config{Default: workload.MustByName("is").Model(), RetrainThreshold: 5})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}()
	ep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster := proto.NewConn(b)
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ep.Run(ctx)
	go func() {
		for {
			if _, err := cluster.Recv(); err != nil {
				return
			}
		}
	}()

	// Stream epoch-bearing samples following the BT curve; the endpoint
	// should feed the modeler until it trains. Each epoch runs under the
	// cap echoed by the previous sample.
	truth := workload.MustByName("bt").Model()
	caps := []units.Power{140, 140, 140, 200, 200, 200, 260, 260, 260, 280, 280, 280}
	now := time.Now()
	cfg.GEOPM.WriteSample(geopm.Sample{EpochCount: 0, PowerCap: caps[0], Time: now})
	time.Sleep(8 * time.Millisecond)
	prev := caps[0]
	for i, c := range caps {
		now = now.Add(time.Duration(truth.TimeAt(prev) * float64(time.Second)))
		cfg.GEOPM.WriteSample(geopm.Sample{EpochCount: int64(i + 1), PowerCap: c, Time: now})
		prev = c
		time.Sleep(8 * time.Millisecond) // let a tick observe each sample
	}
	deadline := time.Now().Add(5 * time.Second)
	for !cfg.Modeler.Trained() {
		if time.Now().After(deadline) {
			t.Fatal("modeler never trained through endpoint flow")
		}
		time.Sleep(time.Millisecond)
	}
}
