package clock

import (
	"sync"
	"time"
)

// Auto is a self-advancing clock: every After or Sleep immediately jumps
// the clock forward by the requested duration and fires. It turns a
// single-goroutine simulation (one benchmark executor characterizing a
// curve, for example) into a pure computation that runs at memory speed —
// no driver goroutine needed.
//
// Auto is only exact when at most one goroutine waits at a time; with
// concurrent waiters their durations interleave arbitrarily (each waiter
// advances the shared clock by its own full duration). Use Virtual with a
// driver for multi-component experiments.
type Auto struct {
	mu  sync.Mutex
	now time.Time
}

// NewAuto returns an auto-advancing clock starting at the given time.
func NewAuto(start time.Time) *Auto { return &Auto{now: start} }

// Now returns the current auto-advanced time.
func (a *Auto) Now() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.now
}

// After advances the clock by d and fires immediately.
func (a *Auto) After(d time.Duration) <-chan time.Time {
	a.mu.Lock()
	if d > 0 {
		a.now = a.now.Add(d)
	}
	now := a.now
	a.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

// Sleep advances the clock by d and returns immediately.
func (a *Auto) Sleep(d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d > 0 {
		a.now = a.now.Add(d)
	}
}
