package clock

import (
	"testing"
	"time"
)

func TestAutoAdvancesOnSleep(t *testing.T) {
	a := NewAuto(epoch)
	a.Sleep(90 * time.Second)
	if want := epoch.Add(90 * time.Second); !a.Now().Equal(want) {
		t.Errorf("Now = %v, want %v", a.Now(), want)
	}
	a.Sleep(-time.Second) // no-op
	if want := epoch.Add(90 * time.Second); !a.Now().Equal(want) {
		t.Errorf("negative Sleep moved clock: %v", a.Now())
	}
}

func TestAutoAfterFiresImmediately(t *testing.T) {
	a := NewAuto(epoch)
	select {
	case got := <-a.After(time.Hour):
		if want := epoch.Add(time.Hour); !got.Equal(want) {
			t.Errorf("fired at %v, want %v", got, want)
		}
	case <-time.After(time.Second):
		t.Fatal("Auto.After did not fire immediately")
	}
	if !a.Now().Equal(epoch.Add(time.Hour)) {
		t.Errorf("Now = %v", a.Now())
	}
}

func TestAutoRunsExecutorFast(t *testing.T) {
	// An hour of virtual waits completes in real microseconds.
	a := NewAuto(epoch)
	start := time.Now()
	for i := 0; i < 3600; i++ {
		a.Sleep(time.Second)
	}
	if real := time.Since(start); real > time.Second {
		t.Errorf("3600 auto sleeps took %v of real time", real)
	}
	if got := a.Now().Sub(epoch); got != time.Hour {
		t.Errorf("virtual elapsed = %v, want 1h", got)
	}
}
