package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v", v.Now())
	}
	v.Advance(90 * time.Second)
	if want := epoch.Add(90 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("after Advance, Now = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAfterFiresAtDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired 1 s early")
	default:
	}
	v.Advance(time.Second)
	got := <-ch
	if want := epoch.Add(10 * time.Second); !got.Equal(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
}

func TestVirtualAfterNonPositive(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	case <-time.After(time.Second):
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestVirtualAdvanceFiresInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	ch3 := v.After(3 * time.Second)
	ch1 := v.After(1 * time.Second)
	ch2 := v.After(2 * time.Second)
	if fired := v.Advance(5 * time.Second); fired != 3 {
		t.Fatalf("fired %d waiters, want 3", fired)
	}
	t1, t2, t3 := <-ch1, <-ch2, <-ch3
	if !t1.Before(t2) || !t2.Before(t3) {
		t.Fatalf("timestamps out of order: %v %v %v", t1, t2, t3)
	}
}

func TestVirtualStep(t *testing.T) {
	v := NewVirtual(epoch)
	if v.Step() {
		t.Fatal("Step with no waiters returned true")
	}
	a := v.After(5 * time.Second)
	b := v.After(5 * time.Second)
	c := v.After(7 * time.Second)
	if !v.Step() {
		t.Fatal("Step returned false")
	}
	<-a
	<-b
	select {
	case <-c:
		t.Fatal("later waiter fired on first Step")
	default:
	}
	if !v.Now().Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("Now = %v after Step", v.Now())
	}
	v.Step()
	<-c
}

func TestVirtualSleepBlocksUntilAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Minute)
		close(done)
	}()
	v.WaitForWaiters(1)
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	v.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestVirtualSleepZeroReturnsImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	doneCh := make(chan struct{})
	go func() {
		v.Sleep(0)
		v.Sleep(-time.Hour)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestVirtualManyConcurrentSleepers(t *testing.T) {
	v := NewVirtual(epoch)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i+1) * time.Second)
		}(i)
	}
	v.WaitForWaiters(n)
	if got := v.PendingWaiters(); got != n {
		t.Fatalf("PendingWaiters = %d, want %d", got, n)
	}
	v.Advance(time.Duration(n) * time.Second)
	wg.Wait()
	if got := v.PendingWaiters(); got != 0 {
		t.Fatalf("PendingWaiters after drain = %d", got)
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Real
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now = %v far before time.Now", now)
	}
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("Real.After(0) did not fire immediately")
	}
	start := time.Now()
	c.Sleep(10 * time.Millisecond)
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("Real.Sleep returned early")
	}
}
