// Package clock abstracts time for the ANOR framework. Every control loop
// — the cluster manager, the job-tier modeler, GEOPM agents, and the
// synthetic benchmarks — is paced through a Clock, so the full daemon stack
// can run against real wall-clock time in production or against a virtual
// clock that compresses an hour-long experiment into milliseconds of test
// time.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time and timed waits.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that receives the clock time once d has
	// elapsed on this clock. Non-positive durations fire immediately.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks the caller for d on this clock.
	Sleep(d time.Duration)
}

// Real is the wall-clock implementation of Clock.
type Real struct{}

// Now returns time.Now.
func (Real) Now() time.Time { return time.Now() }

// After wraps time.After, firing immediately for non-positive durations.
func (Real) After(d time.Duration) <-chan time.Time {
	if d <= 0 {
		ch := make(chan time.Time, 1)
		ch <- time.Now()
		return ch
	}
	return time.After(d)
}

// Sleep wraps time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. Goroutines block on After/Sleep
// until a driver calls Advance (or Step) to move time forward; this gives
// deterministic, fast simulation of long-running control loops.
//
// The zero value is not usable; create one with NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int // tiebreak so equal deadlines fire FIFO
	blocked int // waiters currently enqueued; see WaitForWaiters
	cond    *sync.Cond
}

type waiter struct {
	at  time.Time
	seq int
	ch  chan time.Time
}

type waiterHeap []waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(waiter)) }
func (h *waiterHeap) Pop() any     { old := *h; n := len(old); w := old[n-1]; *h = old[:n-1]; return w }

// NewVirtual returns a virtual clock starting at the given time.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{now: start}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// Now returns the virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After returns a channel that fires when the virtual clock reaches
// now+d. Non-positive durations fire immediately with the current time.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	if d <= 0 {
		ch <- v.now
		return ch
	}
	heap.Push(&v.waiters, waiter{at: v.now.Add(d), seq: v.seq, ch: ch})
	v.seq++
	v.blocked++
	v.cond.Broadcast()
	return ch
}

// Sleep blocks until the virtual clock has advanced by d.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// Advance moves the virtual clock forward by d, firing every waiter whose
// deadline is reached, in deadline order. It returns the number of waiters
// fired.
func (v *Virtual) Advance(d time.Duration) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d < 0 {
		d = 0
	}
	target := v.now.Add(d)
	fired := 0
	for len(v.waiters) > 0 && !v.waiters[0].at.After(target) {
		w := heap.Pop(&v.waiters).(waiter)
		v.now = w.at
		w.ch <- w.at
		v.blocked--
		fired++
	}
	v.now = target
	return fired
}

// Step advances the clock to the next pending deadline, firing exactly the
// waiters scheduled at that instant. It returns false when no waiters are
// pending.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.waiters) == 0 {
		return false
	}
	at := v.waiters[0].at
	for len(v.waiters) > 0 && v.waiters[0].at.Equal(at) {
		w := heap.Pop(&v.waiters).(waiter)
		w.ch <- w.at
		v.blocked--
	}
	if at.After(v.now) {
		v.now = at
	}
	return true
}

// WaitForWaiters blocks until at least n goroutines are waiting on this
// clock. Drivers use it to know every simulated component has parked on its
// next tick before advancing time, avoiding racy lockstep.
func (v *Virtual) WaitForWaiters(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.blocked < n {
		v.cond.Wait()
	}
}

// PendingWaiters reports how many goroutines are currently parked on this
// clock.
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.blocked
}
