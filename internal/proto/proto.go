// Package proto defines the wire protocol between the ANOR cluster tier
// and job tier (§4): length-framed JSON messages over a stream transport.
// The paper uses one TCP connection between the cluster manager on the
// head node and a job-tier power-modeling process per job; the same
// framing works over net.Pipe for in-process experiments.
//
// The message flow is:
//
//	job  → cluster: Hello        (once, on connect: identity, size, claimed type)
//	job  → cluster: ModelUpdate  (periodic: model coefficients, epochs, power)
//	cluster → job : SetBudget    (on every rebudget: the job's per-node cap)
//	job  → cluster: Goodbye      (once, on completion)
package proto

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// Kind discriminates message payloads.
type Kind string

// Message kinds.
const (
	KindHello       Kind = "hello"
	KindModelUpdate Kind = "model_update"
	KindSetBudget   Kind = "set_budget"
	KindGoodbye     Kind = "goodbye"
)

// Hello announces a job to the cluster manager when its endpoint process
// connects.
type Hello struct {
	// JobID uniquely identifies the job.
	JobID string `json:"job_id"`
	// TypeName is the job type the scheduler believes this job is
	// ("bt.D.81", ...). Empty means unknown — the cluster tier applies
	// its default-model policy (§6.1.2).
	TypeName string `json:"type_name,omitempty"`
	// Nodes is the job's node count.
	Nodes int `json:"nodes"`
}

// ModelUpdate carries the job tier's current power-performance model and
// latest measurements up to the cluster tier.
type ModelUpdate struct {
	JobID string `json:"job_id"`
	// A, B, C are the quadratic model coefficients (§4.2).
	A float64 `json:"a"`
	B float64 `json:"b"`
	C float64 `json:"c"`
	// PMinWatts and PMaxWatts bound the model's validity.
	PMinWatts float64 `json:"p_min_watts"`
	PMaxWatts float64 `json:"p_max_watts"`
	// Trained reports whether the coefficients come from an online fit
	// (true) or the modeler's default (false).
	Trained bool `json:"trained"`
	// Epochs is the job's epoch count at TimestampUnixNano.
	Epochs int64 `json:"epochs"`
	// PowerWatts is the job's latest measured power (all nodes).
	PowerWatts float64 `json:"power_watts"`
	// TimestampUnixNano stamps the underlying sample; the paper added
	// timestamps so asynchronous tiers can be mapped onto each other
	// (§7.2).
	TimestampUnixNano int64 `json:"timestamp_unix_nano"`
}

// Model reconstructs the perfmodel from the update's coefficients.
func (u ModelUpdate) Model() perfmodel.Model {
	return perfmodel.Model{
		A: u.A, B: u.B, C: u.C,
		PMin: units.Power(u.PMinWatts), PMax: units.Power(u.PMaxWatts),
	}
}

// ModelUpdateFor builds an update from a model.
func ModelUpdateFor(jobID string, m perfmodel.Model, trained bool) ModelUpdate {
	return ModelUpdate{
		JobID: jobID,
		A:     m.A, B: m.B, C: m.C,
		PMinWatts: m.PMin.Watts(), PMaxWatts: m.PMax.Watts(),
		Trained: trained,
	}
}

// SetBudget instructs a job's endpoint to enforce a new per-node cap.
type SetBudget struct {
	JobID string `json:"job_id"`
	// PowerCapWatts is the per-node cap to enforce across the job.
	PowerCapWatts float64 `json:"power_cap_watts"`
}

// Goodbye announces orderly job completion.
type Goodbye struct {
	JobID string `json:"job_id"`
}

// Envelope is the framed unit: a kind plus exactly one payload.
//
// Trace optionally carries the causal-trace context of the decision
// this message implements or reflects (a SetBudget carries its budget
// decision's context; a ModelUpdate echoes the context of the last
// budget it measured under). The field is backward and forward
// compatible: old peers ignore it, Validate accepts its absence, and
// senders without tracing omit it entirely.
type Envelope struct {
	Kind        Kind              `json:"kind"`
	Trace       *obs.TraceContext `json:"trace,omitempty"`
	Hello       *Hello            `json:"hello,omitempty"`
	ModelUpdate *ModelUpdate      `json:"model_update,omitempty"`
	SetBudget   *SetBudget        `json:"set_budget,omitempty"`
	Goodbye     *Goodbye          `json:"goodbye,omitempty"`
}

// TraceContext returns the envelope's trace context, zero when absent.
func (e Envelope) TraceContext() obs.TraceContext {
	if e.Trace == nil {
		return obs.TraceContext{}
	}
	return *e.Trace
}

// ErrUnknownKind marks an envelope whose kind this peer does not
// recognize. Send rejects them (a local programming error), but Recv
// delivers them untouched so a newer peer's message kinds never kill
// the connection — dispatch switches simply fall through.
var ErrUnknownKind = errors.New("proto: unknown message kind")

// Validate checks that the envelope's kind matches its payload.
// Unrecognized kinds return an error wrapping ErrUnknownKind.
func (e Envelope) Validate() error {
	switch e.Kind {
	case KindHello:
		if e.Hello == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	case KindModelUpdate:
		if e.ModelUpdate == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	case KindSetBudget:
		if e.SetBudget == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	case KindGoodbye:
		if e.Goodbye == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	default:
		return fmt.Errorf("%w %q", ErrUnknownKind, e.Kind)
	}
	return nil
}

// MaxFrame bounds accepted frame sizes; all protocol messages are tiny, so
// anything larger indicates a corrupt or hostile stream.
const MaxFrame = 1 << 20

// Conn frames envelopes over a reliable byte stream. Send and Recv are
// individually safe for concurrent use (one writer lock, one reader lock),
// supporting the usual pattern of a dedicated receive goroutine plus
// multiple senders.
type Conn struct {
	wmu sync.Mutex
	rmu sync.Mutex
	rw  io.ReadWriteCloser
	br  *bufio.Reader
}

// NewConn wraps a stream (net.Conn, net.Pipe end, ...).
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{rw: rw, br: bufio.NewReader(rw)}
}

// Send validates, encodes, and writes one envelope.
func (c *Conn) Send(e Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("proto: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return err
	}
	_, err = c.rw.Write(body)
	return err
}

// Recv blocks for the next envelope. It returns io.EOF (or the transport's
// close error) when the peer disconnects. Well-formed envelopes of an
// unrecognized kind are returned without error — forward compatibility
// with newer peers' message types — so dispatch loops must switch on
// Kind and ignore what they don't handle (all in-tree ones do).
func (c *Conn) Recv() (Envelope, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Envelope{}, fmt.Errorf("proto: frame too large (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return Envelope{}, err
	}
	var e Envelope
	if err := json.Unmarshal(body, &e); err != nil {
		return Envelope{}, err
	}
	if err := e.Validate(); err != nil && !errors.Is(err, ErrUnknownKind) {
		return Envelope{}, err
	}
	return e, nil
}

// Close closes the underlying stream, unblocking any pending Recv.
func (c *Conn) Close() error { return c.rw.Close() }
