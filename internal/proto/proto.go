// Package proto defines the wire protocol between the ANOR cluster tier
// and job tier (§4): length-framed JSON messages over a stream transport.
// The paper uses one TCP connection between the cluster manager on the
// head node and a job-tier power-modeling process per job; the same
// framing works over net.Pipe for in-process experiments.
//
// The message flow is:
//
//	job  → cluster: Hello        (once, on connect: identity, size, claimed type)
//	job  → cluster: ModelUpdate  (periodic: model coefficients, epochs, power)
//	cluster → job : SetBudget    (on every rebudget: the job's per-node cap)
//	job  → cluster: Goodbye      (once, on completion)
package proto

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// Kind discriminates message payloads.
type Kind string

// Message kinds.
const (
	KindHello       Kind = "hello"
	KindModelUpdate Kind = "model_update"
	KindSetBudget   Kind = "set_budget"
	KindGoodbye     Kind = "goodbye"
	// KindPing and KindPong are the liveness probe pair. They are
	// backward compatible: an old peer receives them as unknown kinds
	// (delivered with ErrUnknownKind semantics, see Recv) and its
	// dispatch switch simply ignores them.
	KindPing Kind = "ping"
	KindPong Kind = "pong"
)

// Hello announces a job to the cluster manager when its endpoint process
// connects.
type Hello struct {
	// JobID uniquely identifies the job.
	JobID string `json:"job_id"`
	// TypeName is the job type the scheduler believes this job is
	// ("bt.D.81", ...). Empty means unknown — the cluster tier applies
	// its default-model policy (§6.1.2).
	TypeName string `json:"type_name,omitempty"`
	// Nodes is the job's node count.
	Nodes int `json:"nodes"`
}

// ModelUpdate carries the job tier's current power-performance model and
// latest measurements up to the cluster tier.
type ModelUpdate struct {
	JobID string `json:"job_id"`
	// A, B, C are the quadratic model coefficients (§4.2).
	A float64 `json:"a"`
	B float64 `json:"b"`
	C float64 `json:"c"`
	// PMinWatts and PMaxWatts bound the model's validity.
	PMinWatts float64 `json:"p_min_watts"`
	PMaxWatts float64 `json:"p_max_watts"`
	// Trained reports whether the coefficients come from an online fit
	// (true) or the modeler's default (false).
	Trained bool `json:"trained"`
	// Epochs is the job's epoch count at TimestampUnixNano.
	Epochs int64 `json:"epochs"`
	// PowerWatts is the job's latest measured power (all nodes).
	PowerWatts float64 `json:"power_watts"`
	// TimestampUnixNano stamps the underlying sample; the paper added
	// timestamps so asynchronous tiers can be mapped onto each other
	// (§7.2).
	TimestampUnixNano int64 `json:"timestamp_unix_nano"`
}

// Model reconstructs the perfmodel from the update's coefficients.
func (u ModelUpdate) Model() perfmodel.Model {
	return perfmodel.Model{
		A: u.A, B: u.B, C: u.C,
		PMin: units.Power(u.PMinWatts), PMax: units.Power(u.PMaxWatts),
	}
}

// ModelUpdateFor builds an update from a model.
func ModelUpdateFor(jobID string, m perfmodel.Model, trained bool) ModelUpdate {
	return ModelUpdate{
		JobID: jobID,
		A:     m.A, B: m.B, C: m.C,
		PMinWatts: m.PMin.Watts(), PMaxWatts: m.PMax.Watts(),
		Trained: trained,
	}
}

// SetBudget instructs a job's endpoint to enforce a new per-node cap.
type SetBudget struct {
	JobID string `json:"job_id"`
	// PowerCapWatts is the per-node cap to enforce across the job.
	PowerCapWatts float64 `json:"power_cap_watts"`
}

// Goodbye announces orderly job completion.
type Goodbye struct {
	JobID string `json:"job_id"`
}

// Ping is a liveness probe. Either side may send one; the peer echoes the
// sequence number back in a Pong so round trips can be matched.
type Ping struct {
	// Seq matches a pong to its ping.
	Seq uint64 `json:"seq"`
	// TimestampUnixNano stamps the probe's send time for RTT accounting.
	TimestampUnixNano int64 `json:"timestamp_unix_nano,omitempty"`
}

// Pong answers a Ping, echoing its sequence number and timestamp.
type Pong struct {
	Seq               uint64 `json:"seq"`
	TimestampUnixNano int64  `json:"timestamp_unix_nano,omitempty"`
}

// PongFor builds the pong answering a ping.
func PongFor(p Ping) Pong { return Pong{Seq: p.Seq, TimestampUnixNano: p.TimestampUnixNano} }

// Envelope is the framed unit: a kind plus exactly one payload.
//
// Trace optionally carries the causal-trace context of the decision
// this message implements or reflects (a SetBudget carries its budget
// decision's context; a ModelUpdate echoes the context of the last
// budget it measured under). The field is backward and forward
// compatible: old peers ignore it, Validate accepts its absence, and
// senders without tracing omit it entirely.
type Envelope struct {
	Kind Kind `json:"kind"`
	// Epoch is the sender's controller-fencing epoch: bumped every time
	// a controller generation starts, carried on Hello (the endpoint's
	// highest epoch heard) and on SetBudget/Ping (the controller's own),
	// so either side can reject traffic from a superseded controller
	// after a failover. Zero means unfenced (durability disabled) and is
	// elided from the wire, keeping old and new binaries interoperable.
	Epoch       uint64            `json:"epoch,omitempty"`
	Trace       *obs.TraceContext `json:"trace,omitempty"`
	Hello       *Hello            `json:"hello,omitempty"`
	ModelUpdate *ModelUpdate      `json:"model_update,omitempty"`
	SetBudget   *SetBudget        `json:"set_budget,omitempty"`
	Goodbye     *Goodbye          `json:"goodbye,omitempty"`
	Ping        *Ping             `json:"ping,omitempty"`
	Pong        *Pong             `json:"pong,omitempty"`
}

// TraceContext returns the envelope's trace context, zero when absent.
func (e Envelope) TraceContext() obs.TraceContext {
	if e.Trace == nil {
		return obs.TraceContext{}
	}
	return *e.Trace
}

// ErrUnknownKind marks an envelope whose kind this peer does not
// recognize. Send rejects them (a local programming error), but Recv
// delivers them untouched so a newer peer's message kinds never kill
// the connection — dispatch switches simply fall through.
var ErrUnknownKind = errors.New("proto: unknown message kind")

// Validate checks that the envelope's kind matches its payload.
// Unrecognized kinds return an error wrapping ErrUnknownKind.
func (e Envelope) Validate() error {
	switch e.Kind {
	case KindHello:
		if e.Hello == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	case KindModelUpdate:
		if e.ModelUpdate == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	case KindSetBudget:
		if e.SetBudget == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	case KindGoodbye:
		if e.Goodbye == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	case KindPing:
		if e.Ping == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	case KindPong:
		if e.Pong == nil {
			return fmt.Errorf("proto: %s envelope missing payload", e.Kind)
		}
	default:
		return fmt.Errorf("%w %q", ErrUnknownKind, e.Kind)
	}
	return nil
}

// MaxFrame bounds accepted frame sizes; all protocol messages are tiny, so
// anything larger indicates a corrupt or hostile stream. The bound is
// enforced before the body allocation, so a forged 4-byte length prefix
// can never make Recv allocate more than this.
const MaxFrame = 1 << 20

// ErrFrameTooLarge marks a frame whose length prefix (or encoded body)
// exceeds MaxFrame. Receivers treat it as a fatal stream error: after a
// corrupt prefix there is no way to resynchronize the framing.
var ErrFrameTooLarge = errors.New("proto: frame exceeds maximum size")

// deadliner is the optional transport capability the read/write timeouts
// need; net.Conn (and net.Pipe ends) implement it.
type deadliner interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// Conn frames envelopes over a reliable byte stream. Send and Recv are
// individually safe for concurrent use (one writer lock, one reader lock),
// supporting the usual pattern of a dedicated receive goroutine plus
// multiple senders.
type Conn struct {
	wmu sync.Mutex
	rmu sync.Mutex
	rw  io.ReadWriteCloser
	br  *bufio.Reader

	// d is the transport's deadline capability, nil when absent.
	d deadliner
	// readTimeout/writeTimeout hold per-operation timeouts in
	// nanoseconds; 0 disables. Atomics so SetTimeouts never contends
	// with an in-flight Send/Recv.
	readTimeout  atomic.Int64
	writeTimeout atomic.Int64
}

// NewConn wraps a stream (net.Conn, net.Pipe end, ...).
func NewConn(rw io.ReadWriteCloser) *Conn {
	c := &Conn{rw: rw, br: bufio.NewReader(rw)}
	if d, ok := rw.(deadliner); ok {
		c.d = d
	}
	return c
}

// SetTimeouts arms per-operation deadlines: every Recv must complete
// within read, every Send within write (0 disables either). Timeouts
// require a transport with deadline support (any net.Conn); on plain
// io.ReadWriteClosers they are silently inert. A timed-out operation
// returns the transport's timeout error (a net.Error with Timeout() ==
// true) and, as with any mid-frame failure, the connection is no longer
// usable for framing.
func (c *Conn) SetTimeouts(read, write time.Duration) {
	c.readTimeout.Store(int64(read))
	c.writeTimeout.Store(int64(write))
}

// Send validates, encodes, and writes one envelope.
func (c *Conn) Send(e Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("%w (%d > %d bytes)", ErrFrameTooLarge, len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if wt := time.Duration(c.writeTimeout.Load()); wt > 0 && c.d != nil {
		if err := c.d.SetWriteDeadline(time.Now().Add(wt)); err != nil {
			return err
		}
	}
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return err
	}
	_, err = c.rw.Write(body)
	return err
}

// Recv blocks for the next envelope. It returns io.EOF (or the transport's
// close error) when the peer disconnects. Well-formed envelopes of an
// unrecognized kind are returned without error — forward compatibility
// with newer peers' message types — so dispatch loops must switch on
// Kind and ignore what they don't handle (all in-tree ones do).
func (c *Conn) Recv() (Envelope, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if rt := time.Duration(c.readTimeout.Load()); rt > 0 && c.d != nil {
		if err := c.d.SetReadDeadline(time.Now().Add(rt)); err != nil {
			return Envelope{}, err
		}
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Envelope{}, fmt.Errorf("%w (prefix claims %d > %d bytes)", ErrFrameTooLarge, n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return Envelope{}, err
	}
	var e Envelope
	if err := json.Unmarshal(body, &e); err != nil {
		return Envelope{}, err
	}
	if err := e.Validate(); err != nil && !errors.Is(err, ErrUnknownKind) {
		return Envelope{}, err
	}
	return e, nil
}

// Close closes the underlying stream, unblocking any pending Recv.
func (c *Conn) Close() error { return c.rw.Close() }
