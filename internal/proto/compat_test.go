package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/obs"
)

// frame wraps a JSON body in the wire's length prefix.
func frame(t *testing.T, body []byte) []byte {
	t.Helper()
	if len(body) > MaxFrame {
		t.Fatalf("test body too large: %d", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	return append(hdr[:], body...)
}

// TestRecvIgnoresUnknownFields is the old-peer side of forward
// compatibility: an envelope from a newer peer that grew extra fields
// (like trace did in this revision, at both envelope and payload level)
// must decode cleanly with the known fields intact.
func TestRecvIgnoresUnknownFields(t *testing.T) {
	body := []byte(`{
		"kind": "set_budget",
		"trace": {"trace_id": "t1", "span_id": "s1", "root_ns": 42, "future_field": true},
		"shiny_new_envelope_field": {"nested": [1, 2, 3]},
		"set_budget": {"job_id": "j9", "power_cap_watts": 210.5, "issued_by": "v99"}
	}`)
	env, err := recvFromBytes(frame(t, body))
	if err != nil {
		t.Fatalf("unknown fields broke decoding: %v", err)
	}
	if env.Kind != KindSetBudget || env.SetBudget == nil {
		t.Fatalf("envelope = %+v", env)
	}
	if env.SetBudget.JobID != "j9" || env.SetBudget.PowerCapWatts != 210.5 {
		t.Errorf("payload = %+v", env.SetBudget)
	}
	tc := env.TraceContext()
	if tc.TraceID != "t1" || tc.SpanID != "s1" || tc.RootStartUnixNano != 42 {
		t.Errorf("trace context = %+v", tc)
	}
}

// TestRecvDeliversUnknownKinds is the other half: a message kind this
// peer has never heard of must not kill the connection — it is
// delivered as-is and dispatch switches fall through.
func TestRecvDeliversUnknownKinds(t *testing.T) {
	var buf rwBuffer
	buf.Write(frame(t, []byte(`{"kind":"set_thermal_budget","watts_per_rack":1200}`)))
	buf.Write(frame(t, []byte(`{"kind":"goodbye","goodbye":{"job_id":"after"}}`)))
	c := NewConn(&buf)

	env, err := c.Recv()
	if err != nil {
		t.Fatalf("unknown kind errored: %v", err)
	}
	if env.Kind != Kind("set_thermal_budget") {
		t.Fatalf("kind = %q", env.Kind)
	}
	if verr := env.Validate(); !errors.Is(verr, ErrUnknownKind) {
		t.Errorf("Validate = %v, want ErrUnknownKind", verr)
	}
	// The stream stays framed and alive: the next message decodes fine.
	env, err = c.Recv()
	if err != nil || env.Kind != KindGoodbye || env.Goodbye.JobID != "after" {
		t.Fatalf("message after unknown kind: %+v, %v", env, err)
	}
}

// TestSendStillRejectsUnknownKinds: tolerance is for the receive path
// only; writing an unknown kind locally is a programming error.
func TestSendStillRejectsUnknownKinds(t *testing.T) {
	var buf rwBuffer
	err := NewConn(&buf).Send(Envelope{Kind: Kind("set_thermal_budget")})
	if !errors.Is(err, ErrUnknownKind) {
		t.Errorf("Send(unknown kind) = %v, want ErrUnknownKind", err)
	}
}

// TestTraceContextRoundTrip pins the wire shape of the new trace field:
// present when set, omitted entirely when not, and bit-exact through a
// Send/Recv cycle.
func TestTraceContextRoundTrip(t *testing.T) {
	tc := obs.TraceContext{TraceID: "0123abcd", SpanID: "ef45", RootStartUnixNano: 1754400000123456789}
	env := Envelope{Kind: KindSetBudget, Trace: &tc,
		SetBudget: &SetBudget{JobID: "j1", PowerCapWatts: 180}}

	var buf rwBuffer
	c := NewConn(&buf)
	if err := c.Send(env); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil || *got.Trace != tc {
		t.Errorf("trace after round trip = %+v, want %+v", got.Trace, tc)
	}

	// Untraced envelopes must not even mention the field (old peers see
	// byte-identical frames to the previous protocol revision).
	raw, err := json.Marshal(Envelope{Kind: KindGoodbye, Goodbye: &Goodbye{JobID: "j1"}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("trace")) {
		t.Errorf("untraced envelope leaks trace field: %s", raw)
	}
}

// TestEpochRoundTrip pins the wire shape of the fencing epoch: carried
// bit-exact when set, elided entirely at zero so unfenced deployments
// emit frames byte-identical to the previous protocol revision.
func TestEpochRoundTrip(t *testing.T) {
	var buf rwBuffer
	c := NewConn(&buf)
	env := Envelope{Kind: KindSetBudget, Epoch: 7,
		SetBudget: &SetBudget{JobID: "j1", PowerCapWatts: 150}}
	if err := c.Send(env); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 {
		t.Errorf("epoch after round trip = %d, want 7", got.Epoch)
	}

	raw, err := json.Marshal(Envelope{Kind: KindHello, Hello: &Hello{JobID: "j1", Nodes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("epoch")) {
		t.Errorf("unfenced envelope leaks epoch field: %s", raw)
	}

	// An old peer's envelope (no epoch key) decodes to epoch zero.
	old, err := recvFromBytes(frame(t, []byte(`{"kind":"ping","ping":{"seq":3}}`)))
	if err != nil || old.Epoch != 0 {
		t.Fatalf("old-peer envelope: %+v, %v", old, err)
	}
}
