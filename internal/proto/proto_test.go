package proto

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// exchange sends e on tx and returns what rx receives.
func exchange(t *testing.T, tx, rx *Conn, e Envelope) Envelope {
	t.Helper()
	var (
		got Envelope
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, err = rx.Recv()
	}()
	if serr := tx.Send(e); serr != nil {
		t.Fatalf("Send: %v", serr)
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	tx, rx := pipePair()
	defer tx.Close()
	defer rx.Close()
	got := exchange(t, tx, rx, Envelope{Kind: KindHello, Hello: &Hello{JobID: "j1", TypeName: "bt.D.81", Nodes: 4}})
	if got.Kind != KindHello || got.Hello == nil {
		t.Fatalf("got %+v", got)
	}
	if *got.Hello != (Hello{JobID: "j1", TypeName: "bt.D.81", Nodes: 4}) {
		t.Errorf("hello = %+v", *got.Hello)
	}
}

func TestModelUpdateRoundTripPreservesModel(t *testing.T) {
	tx, rx := pipePair()
	defer tx.Close()
	defer rx.Close()
	m := workload.MustByName("ft").Model()
	u := ModelUpdateFor("j2", m, true)
	u.Epochs = 17
	u.PowerWatts = 433.5
	u.TimestampUnixNano = 12345
	got := exchange(t, tx, rx, Envelope{Kind: KindModelUpdate, ModelUpdate: &u})
	if got.ModelUpdate == nil {
		t.Fatal("missing payload")
	}
	back := got.ModelUpdate.Model()
	if back != m {
		t.Errorf("model round trip: got %+v want %+v", back, m)
	}
	if got.ModelUpdate.Epochs != 17 || !got.ModelUpdate.Trained {
		t.Errorf("fields lost: %+v", got.ModelUpdate)
	}
}

func TestSetBudgetAndGoodbye(t *testing.T) {
	tx, rx := pipePair()
	defer tx.Close()
	defer rx.Close()
	got := exchange(t, tx, rx, Envelope{Kind: KindSetBudget, SetBudget: &SetBudget{JobID: "j", PowerCapWatts: 212.5}})
	if got.SetBudget.PowerCapWatts != 212.5 {
		t.Errorf("cap = %v", got.SetBudget.PowerCapWatts)
	}
	got = exchange(t, tx, rx, Envelope{Kind: KindGoodbye, Goodbye: &Goodbye{JobID: "j"}})
	if got.Kind != KindGoodbye || got.Goodbye.JobID != "j" {
		t.Errorf("goodbye = %+v", got)
	}
}

func TestSendRejectsMismatchedEnvelope(t *testing.T) {
	tx, rx := pipePair()
	defer tx.Close()
	defer rx.Close()
	if err := tx.Send(Envelope{Kind: KindHello}); err == nil {
		t.Error("kind without payload accepted")
	}
	if err := tx.Send(Envelope{Kind: "bogus", Hello: &Hello{}}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRecvEOFOnClose(t *testing.T) {
	tx, rx := pipePair()
	done := make(chan error, 1)
	go func() {
		_, err := rx.Recv()
		done <- err
	}()
	tx.Close()
	if err := <-done; !errors.Is(err, io.EOF) && !strings.Contains(err.Error(), "closed") {
		t.Errorf("Recv after close: %v", err)
	}
	rx.Close()
}

func TestManySequentialMessages(t *testing.T) {
	tx, rx := pipePair()
	defer tx.Close()
	defer rx.Close()
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	errs := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			e, err := rx.Recv()
			if err != nil {
				errs <- err
				return
			}
			if e.SetBudget == nil || int(e.SetBudget.PowerCapWatts) != 140+i {
				errs <- errors.New("out-of-order or corrupt frame")
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < n; i++ {
		if err := tx.Send(Envelope{Kind: KindSetBudget, SetBudget: &SetBudget{JobID: "x", PowerCapWatts: float64(140 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- NewConn(c)
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewConn(raw)
	defer client.Close()
	server := <-accepted
	defer server.Close()

	if err := client.Send(Envelope{Kind: KindHello, Hello: &Hello{JobID: "tcp", Nodes: 2}}); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Hello.JobID != "tcp" {
		t.Errorf("got %+v", got)
	}
}

func TestValidateAllKinds(t *testing.T) {
	ok := []Envelope{
		{Kind: KindHello, Hello: &Hello{}},
		{Kind: KindModelUpdate, ModelUpdate: &ModelUpdate{}},
		{Kind: KindSetBudget, SetBudget: &SetBudget{}},
		{Kind: KindGoodbye, Goodbye: &Goodbye{}},
	}
	for _, e := range ok {
		if err := e.Validate(); err != nil {
			t.Errorf("%s: %v", e.Kind, err)
		}
	}
	bad := []Envelope{
		{Kind: KindHello},
		{Kind: KindModelUpdate},
		{Kind: KindSetBudget},
		{Kind: KindGoodbye},
		{},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("kind %q validated without payload", e.Kind)
		}
	}
}
