package proto

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func rawFrame(body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	return append(hdr[:], body...)
}

// TestRecvFramingTable drives Recv through the malformed-stream corpus:
// every case must produce a typed error or a deliverable envelope, never
// a panic or a hang.
func TestRecvFramingTable(t *testing.T) {
	cases := []struct {
		name    string
		raw     []byte
		wantErr error // nil means any error is acceptable when ok is false
		ok      bool
	}{
		{name: "zero-length frame", raw: rawFrame(nil)},
		{name: "zero-length then garbage", raw: append(rawFrame(nil), 0xff, 0xff)},
		{name: "oversized prefix", raw: func() []byte {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
			return hdr[:]
		}(), wantErr: ErrFrameTooLarge},
		{name: "max uint32 prefix", raw: []byte{0xff, 0xff, 0xff, 0xff}, wantErr: ErrFrameTooLarge},
		{name: "truncated header", raw: []byte{0x00, 0x00}},
		{name: "truncated body", raw: rawFrame([]byte(`{"kind":"hello"`))[:10]},
		{name: "garbage JSON", raw: rawFrame([]byte(`{{{{`))},
		{name: "JSON array body", raw: rawFrame([]byte(`[1,2,3]`))},
		{name: "kind without payload", raw: rawFrame([]byte(`{"kind":"set_budget"}`))},
		{name: "unknown kind delivered", raw: rawFrame([]byte(`{"kind":"future_thing"}`)), ok: true},
		{name: "valid goodbye", raw: rawFrame([]byte(`{"kind":"goodbye","goodbye":{"job_id":"j1"}}`)), ok: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, err := recvFromBytes(tc.raw)
			if tc.ok {
				if err != nil {
					t.Fatalf("err = %v, want delivered", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, env = %+v", env)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestOversizedPrefixDoesNotAllocate relies on the bound being enforced
// before the body buffer: a 4 GiB length prefix on an empty stream must
// fail with ErrFrameTooLarge, not attempt the allocation and hit EOF.
func TestOversizedPrefixDoesNotAllocate(t *testing.T) {
	_, err := recvFromBytes([]byte{0xff, 0xff, 0xff, 0xff})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestSendRejectsOversizedBody(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := NewConn(a)
	err := c.Send(Envelope{Kind: KindHello, Hello: &Hello{
		JobID: strings.Repeat("x", MaxFrame+1), Nodes: 1,
	}})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	go func() {
		env, err := cb.Recv()
		if err != nil || env.Kind != KindPing {
			return
		}
		pong := PongFor(*env.Ping)
		_ = cb.Send(Envelope{Kind: KindPong, Pong: &pong})
	}()

	ping := Ping{Seq: 42, TimestampUnixNano: 12345}
	if err := ca.Send(Envelope{Kind: KindPing, Ping: &ping}); err != nil {
		t.Fatal(err)
	}
	env, err := ca.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindPong || env.Pong == nil {
		t.Fatalf("reply = %+v", env)
	}
	if env.Pong.Seq != 42 || env.Pong.TimestampUnixNano != 12345 {
		t.Fatalf("pong did not echo the ping: %+v", env.Pong)
	}
}

func TestPingPongValidate(t *testing.T) {
	if err := (Envelope{Kind: KindPing}).Validate(); err == nil {
		t.Error("ping without payload accepted")
	}
	if err := (Envelope{Kind: KindPong}).Validate(); err == nil {
		t.Error("pong without payload accepted")
	}
	if err := (Envelope{Kind: KindPing, Ping: &Ping{Seq: 1}}).Validate(); err != nil {
		t.Errorf("valid ping rejected: %v", err)
	}
}

// TestReadTimeoutUnblocksRecv arms the read deadline against a silent
// peer: Recv must return a timeout error instead of hanging forever.
func TestReadTimeoutUnblocksRecv(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := NewConn(a)
	c.SetTimeouts(30*time.Millisecond, 0)
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("err = %v, want a net timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not honor the read deadline")
	}
}

// FuzzRecv feeds arbitrary byte streams into the frame decoder. The
// invariant matches the quick-check test: an error or a deliverable
// envelope, never a panic — and never an allocation beyond MaxFrame.
func FuzzRecv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(rawFrame([]byte(`{"kind":"hello","hello":{"job_id":"j","nodes":2}}`)))
	f.Add(rawFrame([]byte(`{"kind":"ping","ping":{"seq":7}}`)))
	f.Add(rawFrame([]byte(`{"kind":"mystery"}`)))
	f.Add(rawFrame([]byte(`{{{{`)))
	f.Fuzz(func(t *testing.T, raw []byte) {
		env, err := recvFromBytes(raw)
		if err != nil {
			return
		}
		if verr := env.Validate(); verr != nil && !errors.Is(verr, ErrUnknownKind) {
			t.Fatalf("delivered envelope fails validation: %v", verr)
		}
	})
}
