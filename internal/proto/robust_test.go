package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

// rwBuffer adapts a bytes.Buffer into an io.ReadWriteCloser for feeding
// crafted byte streams into Conn.Recv.
type rwBuffer struct{ bytes.Buffer }

func (b *rwBuffer) Close() error { return nil }

func recvFromBytes(raw []byte) (Envelope, error) {
	var b rwBuffer
	b.Write(raw)
	return NewConn(&b).Recv()
}

func TestRecvRejectsOversizedFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := recvFromBytes(hdr[:]); err == nil {
		t.Error("oversized frame header accepted")
	}
}

func TestRecvRejectsTruncatedFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	raw := append(hdr[:], []byte(`{"kind":"hello"`)...) // 15 < 100 bytes
	if _, err := recvFromBytes(raw); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestRecvRejectsNonJSONBody(t *testing.T) {
	body := []byte("this is not json at all...")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := recvFromBytes(append(hdr[:], body...)); err == nil {
		t.Error("non-JSON body accepted")
	}
}

func TestRecvRejectsValidJSONBadEnvelope(t *testing.T) {
	body := []byte(`{"kind":"set_budget"}`) // kind without payload
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := recvFromBytes(append(hdr[:], body...)); err == nil {
		t.Error("mismatched envelope accepted")
	}
}

func TestRecvNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(raw []byte) bool {
		// Any byte soup must produce an error or a deliverable envelope
		// (valid, or well-formed with an unrecognized kind) — never a
		// panic.
		env, err := recvFromBytes(raw)
		if err != nil {
			return true
		}
		verr := env.Validate()
		return verr == nil || errors.Is(verr, ErrUnknownKind)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRecvEmptyStream(t *testing.T) {
	if _, err := recvFromBytes(nil); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}
