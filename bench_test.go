// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5–§6). Each benchmark runs a bounded configuration of the
// corresponding experiment so that `go test -bench=. -benchmem` completes
// in minutes; `cmd/anor-bench` runs the full-size versions and prints the
// figures' rows and series.
//
// The custom metrics attached to each benchmark carry the figure's
// headline numbers (slowdowns, tracking error, QoS percentiles) so a
// bench run doubles as a shape check against the paper.
package repro_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/dr"
	"repro/internal/experiments"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// BenchmarkFig3Characterization sweeps all eight NPB job types across the
// power-cap range (Fig. 3).
func BenchmarkFig3Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig3(experiments.Fig3Config{Runs: 3, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				if s.Name == "bt.D.81" {
					b.ReportMetric(s.Y[0], "bt-slowdown-at-140W")
				}
			}
		}
	}
}

// BenchmarkFig3FitTable precharacterizes every type and fits the §4.2
// quadratic model (§5.1's R² table).
func BenchmarkFig3FitTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FitTable(experiments.FitTableConfig{Runs: 5, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.TypeName == "bt.D.81" {
					b.ReportMetric(r.R2, "bt-R2")
				}
			}
		}
	}
}

// BenchmarkFig4BudgeterComparison evaluates the even-slowdown vs
// even-power budget sweeps (Fig. 4).
func BenchmarkFig4BudgeterComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4(experiments.Fig4Config{})
		if i == 0 {
			// Worst-job slowdown at the mid budget under each policy.
			series := res.PerBudgeter["even-slowdown"]
			mid := len(series[0].X) / 2
			worst := 0.0
			for _, s := range series {
				if s.Y[mid] > worst {
					worst = s.Y[mid]
				}
			}
			b.ReportMetric(100*worst, "even-slowdown-worst-%")
			series = res.PerBudgeter["even-power"]
			worst = 0
			for _, s := range series {
				if s.Y[mid] > worst {
					worst = s.Y[mid]
				}
			}
			b.ReportMetric(100*worst, "even-power-worst-%")
		}
	}
}

// BenchmarkFig5Misclassification runs the four misclassification
// scenarios (Fig. 5).
func BenchmarkFig5Misclassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Fig5(experiments.Fig5Config{})
		if i == 0 && len(results) != 4 {
			b.Fatalf("scenarios = %d", len(results))
		}
	}
}

// sharedCapBench runs one Figs. 6–8 experiment with one trial per policy.
func sharedCapBench(b *testing.B, run func(experiments.Fig6Config) ([]experiments.SharedCapRow, error), jobID string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run(experiments.Fig6Config{Trials: 1, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rows {
				switch row.Policy {
				case "Performance Aware":
					b.ReportMetric(100*row.MeanSlowdown[jobID], "aware-slowdown-%")
				case "Under-estimate bt", "Over-estimate sp":
					b.ReportMetric(100*row.MeanSlowdown[jobID], "misclassified-slowdown-%")
				case "Under-estimate bt, with feedback", "Over-estimate sp, with feedback":
					b.ReportMetric(100*row.MeanSlowdown[jobID], "feedback-slowdown-%")
				}
			}
		}
	}
}

// BenchmarkFig6SharedCapBTSP measures BT+SP under a shared 840 W budget
// across the six policies of Fig. 6.
func BenchmarkFig6SharedCapBTSP(b *testing.B) {
	sharedCapBench(b, experiments.Fig6, "bt.D.x")
}

// BenchmarkFig7TwoBT measures two BT instances with one misclassified as
// IS (Fig. 7).
func BenchmarkFig7TwoBT(b *testing.B) {
	sharedCapBench(b, experiments.Fig7, "bt.D.x=is.D.x")
}

// BenchmarkFig8TwoSP measures two SP instances with one misclassified as
// EP (Fig. 8).
func BenchmarkFig8TwoSP(b *testing.B) {
	sharedCapBench(b, experiments.Fig8, "sp.D.x")
}

// BenchmarkFig9PowerTracking runs a bounded moving-target schedule on the
// full emulated stack and reports tracking error (Fig. 9).
func BenchmarkFig9PowerTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Fig9Config{
			Horizon: 10 * time.Minute,
			Seed:    uint64(i + 10),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.P90Err, "P90-track-err-%")
			b.ReportMetric(float64(res.Jobs), "jobs")
		}
	}
}

// BenchmarkFig10PolicyComparison compares Uniform / Characterized /
// Misclassified / Adjusted over a bounded schedule (Fig. 10).
func BenchmarkFig10PolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(experiments.Fig10Config{
			Seed:    uint64(i + 10),
			Horizon: 10 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bt := "bt.D.81"
			for _, row := range rows {
				switch row.Policy {
				case "Misclassified":
					b.ReportMetric(100*row.MeanSlowdown[bt], "misclassified-bt-%")
				case "Adjusted":
					b.ReportMetric(100*row.MeanSlowdown[bt], "adjusted-bt-%")
				}
			}
		}
	}
}

// BenchmarkFig11Variation runs a bounded variation sweep on the tabular
// simulator (Fig. 11).
func BenchmarkFig11Variation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		levels, err := experiments.Fig11(experiments.Fig11Config{
			Nodes:     250,
			Levels:    []float64{0, 0.15, 0.30},
			Trials:    3,
			Horizon:   20 * time.Minute,
			NodeScale: 6,
			Seed:      uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first, last := levels[0], levels[len(levels)-1]
			b.ReportMetric(mean(first.P90QoSByType), "P90-QoS-no-variation")
			b.ReportMetric(mean(last.P90QoSByType), "P90-QoS-max-variation")
		}
	}
}

// BenchmarkHierFidelity sweeps rack counts through the §8 hierarchical
// allocation schemes and reports their deviation from flat allocation.
func BenchmarkHierFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.HierFidelity(uint64(i+1), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			worstQuad := 0.0
			for _, p := range points {
				if p.QuadraticErr > worstQuad {
					worstQuad = p.QuadraticErr
				}
			}
			b.ReportMetric(worstQuad, "worst-quadratic-slowdown-err")
		}
	}
}

// BenchmarkQoSTrace regenerates the §5.2 queue-trace statistic.
func BenchmarkQoSTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.QueueTraceStat(uint64(i))
		if i == 0 {
			b.ReportMetric(r, "P90-wait/exec")
		}
	}
}

// BenchmarkAQATraining runs the §4.4 bid-training search against the
// tabular simulator.
func BenchmarkAQATraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TrainBid(uint64(i+6), 50, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Bid.Reserve.Kilowatts(), "reserve-kW")
			b.ReportMetric(res.Eval.QoS90, "QoS90")
		}
	}
}

// BenchmarkTabularSimulator1000 measures the raw throughput of the §5.6
// simulator at the paper's 1000-node scale (15 simulated minutes per
// iteration).
func BenchmarkTabularSimulator1000(b *testing.B) {
	types := make([]workload.Type, 0, 6)
	for _, t := range workload.LongRunning() {
		types = append(types, t.Scale(25))
	}
	weights := map[string]float64{}
	for _, t := range types {
		weights[t.Name] = 1
	}
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		arrivals, err := schedule.Generate(schedule.Config{
			RNG: stats.NewRNG(seed), Types: types,
			Utilization: 0.75, TotalNodes: 1000, Horizon: 15 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Nodes: 1000, Types: types, Weights: weights, Arrivals: arrivals,
			Bid:          dr.Bid{AvgPower: 150000, Reserve: 30000},
			Signal:       dr.NewRandomWalk(seed, 4*time.Second, 0.25, 2*time.Hour),
			Horizon:      15 * time.Minute,
			Seed:         seed,
			VariationStd: 0.05,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Jobs)), "jobs")
		}
	}
}

// sweepBenchRun is one small simulator run for the sweep-engine
// benchmarks: 32 nodes for 5 simulated minutes, seeded from the flat run
// index so serial and parallel sweeps compute identical work.
func sweepBenchRun(baseSeed uint64, run int) error {
	seed := sweep.DeriveSeed(baseSeed, run)
	types := workload.LongRunning()
	weights := map[string]float64{}
	for _, t := range types {
		weights[t.Name] = 1
	}
	arrivals, err := schedule.Generate(schedule.Config{
		RNG: stats.NewRNG(seed), Types: types,
		Utilization: 0.8, TotalNodes: 32, Horizon: 5 * time.Minute,
	})
	if err != nil {
		return err
	}
	_, err = sim.Run(sim.Config{
		Nodes: 32, Shards: 1, Types: types, Weights: weights, Arrivals: arrivals,
		Bid:     dr.Bid{AvgPower: 5000, Reserve: 1000},
		Signal:  dr.NewRandomWalk(seed^0xf16, 4*time.Second, 0.25, time.Hour),
		Horizon: 5 * time.Minute,
		Seed:    seed,
	})
	return err
}

// benchmarkSweep drives 8 independent simulator runs through the sweep
// pool with the given worker bound.
func benchmarkSweep(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		err := sweep.ForEach(context.Background(), 8, sweep.Options{Workers: workers},
			func(_ context.Context, run int) error {
				return sweepBenchRun(uint64(i+1), run)
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial runs the 8-run sweep on one worker: the baseline
// for the parallel speedup.
func BenchmarkSweepSerial(b *testing.B) { benchmarkSweep(b, 1) }

// BenchmarkSweepParallel runs the same 8-run sweep on GOMAXPROCS
// workers; results are bit-identical to the serial sweep.
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }

// BenchmarkSimStep measures the per-simulated-second cost of the tabular
// simulator at the paper's 1000-node scale, reporting simulated steps per
// wall-clock second. BENCH_sim.json tracks this number across engine
// changes (the sim-steps/s metric divides by the arrival horizon, not the
// drain-inclusive step count, so it understates raw throughput; the
// history file measures actual steps).
func BenchmarkSimStep(b *testing.B) {
	const simNodes = 1000
	horizon := 2 * time.Minute
	types := make([]workload.Type, 0, 6)
	for _, t := range workload.LongRunning() {
		types = append(types, t.Scale(25))
	}
	weights := map[string]float64{}
	for _, t := range types {
		weights[t.Name] = 1
	}
	arrivals, err := schedule.Generate(schedule.Config{
		RNG: stats.NewRNG(1), Types: types,
		Utilization: 0.75, TotalNodes: simNodes, Horizon: horizon,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Nodes: simNodes, Types: types, Weights: weights, Arrivals: arrivals,
			Bid:          dr.Bid{AvgPower: 150000, Reserve: 30000},
			Signal:       dr.NewRandomWalk(1, 4*time.Second, 0.25, 2*time.Hour),
			Horizon:      horizon,
			Seed:         1,
			VariationStd: 0.05,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	steps := horizon.Seconds() * float64(b.N)
	b.ReportMetric(steps/b.Elapsed().Seconds(), "sim-steps/s")
}

func mean(m map[string]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum / float64(len(m))
}
