// Misclassification and recovery: the §6.2 story in one program. A
// power-hungry BT job is misclassified as the insensitive IS type, so the
// performance-aware budgeter starves it. With online feedback enabled,
// the job-tier modeler learns the true power-performance curve from epoch
// timings and the cluster tier recovers most of the lost performance.
//
//	go run ./examples/misclassification
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/budget"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/workload"
)

func run(useFeedback bool) (bt, sp float64) {
	v := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	cluster, err := core.NewCluster(core.Config{
		Nodes:       4,
		Clock:       v,
		Budgeter:    budget.EvenSlowdown{},
		Target:      func(time.Time) units.Power { return 840 }, // 75% of TDP
		UseFeedback: useFeedback,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var results map[string]core.JobResult
	core.Drive(v, func() {
		results, err = cluster.RunJobs(context.Background(), []core.JobSpec{
			{ID: "bt-misclassified", Type: workload.MustByName("bt"), ClaimedType: "is.D.32"},
			{ID: "sp-correct", Type: workload.MustByName("sp")},
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	return results["bt-misclassified"].Slowdown - 1, results["sp-correct"].Slowdown - 1
}

func main() {
	fmt.Println("BT misclassified as IS, co-scheduled with SP under a shared 840 W budget")
	fmt.Println()
	btNo, spNo := run(false)
	fmt.Printf("without feedback:  bt slowdown %5.1f%%   sp slowdown %5.1f%%\n", 100*btNo, 100*spNo)
	btFb, spFb := run(true)
	fmt.Printf("with feedback:     bt slowdown %5.1f%%   sp slowdown %5.1f%%\n", 100*btFb, 100*spFb)
	fmt.Println()
	if btFb < btNo {
		fmt.Printf("online performance feedback recovered %.1f points of BT's slowdown,\n", 100*(btNo-btFb))
		fmt.Println("matching the paper's §6.2 finding that the job tier's retrained model")
		fmt.Println("lets the cluster tier correct a bad precharacterization.")
	} else {
		fmt.Println("no recovery observed — unexpected; see EXPERIMENTS.md for the reference run")
	}
}
