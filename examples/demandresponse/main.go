// Demand response: a ten-minute slice of the paper's Fig. 9 scenario. The
// cluster bids an average power and a reserve, the grid sends a new
// regulation target every four seconds, and the ANOR stack steers job
// power caps to follow it while a Poisson stream of NPB-style jobs flows
// through the AQA scheduler.
//
//	go run ./examples/demandresponse
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	res, err := experiments.Fig9(experiments.Fig9Config{
		Horizon: 10 * time.Minute,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("demand response on a 16-node emulated cluster (targets 2.3–4.5 kW)")
	fmt.Printf("jobs completed: %d\n", res.Jobs)
	fmt.Printf("mean |target − measured|: %s\n", res.Summary.MeanAbsErr)
	fmt.Printf("90th percentile tracking error: %.1f%% of reserve\n", 100*res.P90Err)
	fmt.Printf("constraint (≤30%% error ≥90%% of time): %v\n\n", res.Summary.WithinConstraint)

	// ASCII strip chart: one column per ~15 s, targets ▲ vs measured ●.
	fmt.Println("power over time (each row 250 W, T = target, M = measured, * = both):")
	const rows = 10
	const lo, hi = 2000.0, 4500.0
	cols := 72
	if len(res.Tracking) < cols {
		cols = len(res.Tracking)
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	bucket := func(w float64) int {
		r := int((hi - w) / (hi - lo) * float64(rows))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		return r
	}
	for c := 0; c < cols; c++ {
		p := res.Tracking[c*len(res.Tracking)/cols]
		tr, mr := bucket(p.Target.Watts()), bucket(p.Measured.Watts())
		grid[tr][c] = 'T'
		if mr == tr {
			grid[tr][c] = '*'
		} else {
			grid[mr][c] = 'M'
		}
	}
	for r, row := range grid {
		fmt.Printf("%6.1f kW |%s|\n", (hi-(float64(r)+0.5)*(hi-lo)/rows)/1000, row)
	}
	fmt.Println("\nper-type mean slowdown under the moving cap:")
	for name, xs := range res.SlowdownByType {
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		fmt.Printf("  %-10s %5.1f%%  (%d jobs)\n", name, 100*sum/float64(len(xs)), len(xs))
	}
}
