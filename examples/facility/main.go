// Facility coordination (§8 future work): a data center bringing up a
// next-generation cluster while the previous generation still runs, under
// shared power infrastructure that cannot feed both at peak. The facility
// coordinator water-fills the available capacity across the clusters'
// advertised ranges; each cluster's ANOR manager would then treat its
// grant as the ceiling for its own demand-response target.
//
//	go run ./examples/facility
package main

import (
	"fmt"
	"log"

	"repro/internal/facility"
	"repro/internal/units"
)

func main() {
	// gen1: 16 old nodes; gen2: 32 new nodes. Combined peak 13.4 kW, but
	// the feed is provisioned for 10 kW.
	members := []facility.Member{
		{Name: "gen1", MinPower: 16 * 140, MaxPower: 16 * 280, Demand: 16 * 250, Priority: 1},
		{Name: "gen2", MinPower: 32 * 140, MaxPower: 32 * 280, Demand: 32 * 260, Priority: 2},
	}
	coord := facility.Coordinator{Capacity: 10000}

	fmt.Println("facility capacity: 10.0 kW; combined demand:",
		units.Power(members[0].Demand+members[1].Demand))
	alloc, err := coord.Allocate(members)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range facility.Summarize(members, alloc) {
		fmt.Printf("  %-5s granted %-9s demand %-9s satisfied=%v\n",
			r.Name, r.Granted, r.Demand, r.Satisfied)
	}
	fmt.Printf("  total granted: %s (capacity fully used, floors respected)\n\n", alloc.Total())

	// Overnight, gen1 drains for maintenance: its demand collapses and
	// gen2 can burst toward its peak.
	members[0].Demand = 16 * 150
	alloc, err = coord.Allocate(members)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after gen1 drains to 2.4 kW demand:")
	for _, r := range facility.Summarize(members, alloc) {
		fmt.Printf("  %-5s granted %-9s demand %-9s satisfied=%v\n",
			r.Name, r.Granted, r.Demand, r.Satisfied)
	}
	fmt.Printf("  total granted: %s\n", alloc.Total())
}
