// Quickstart: stand up an emulated ANOR cluster, run one instrumented job
// under a static cluster power budget, and print its GEOPM report.
//
// This exercises the whole stack end to end — simulated RAPL registers,
// per-node GEOPM agents, the job-tier power modeler, the wire protocol,
// and the cluster-tier budgeter — on a virtual clock, so the "two-minute"
// job finishes in well under a second of wall time.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/budget"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	v := clock.NewVirtual(start)

	// A 4-node cluster asked to hold 600 W total: with two nodes idle at
	// 70 W each, the job's two nodes share 460 W — a mild cap.
	cluster, err := core.NewCluster(core.Config{
		Nodes:    4,
		Clock:    v,
		Budgeter: budget.EvenSlowdown{},
		Target:   func(time.Time) units.Power { return 600 },
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	typ := workload.MustByName("mg") // 120 s uncapped, 1 node — use 2 below
	var res core.JobResult
	core.Drive(v, func() {
		res, err = cluster.RunJob(context.Background(), core.JobSpec{
			ID:    "quickstart-job",
			Type:  typ,
			Nodes: 2,
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Report)
	fmt.Printf("\nslowdown vs uncapped: %.1f%% (type's max at minimum cap: %.0f%%)\n",
		100*(res.Slowdown-1), 100*(typ.MaxSlowdown-1))
	fmt.Printf("virtual time elapsed: %s\n", v.Now().Sub(start).Round(time.Second))

	pts := cluster.Manager().Tracking().Points()
	if len(pts) > 0 {
		last := pts[len(pts)-1]
		fmt.Printf("cluster tracking: target %s, measured %s at shutdown\n", last.Target, last.Measured)
	}
}
