// Performance variation: a scaled-down §6.4 study. The tabular cluster
// simulator runs a few hundred nodes with per-node performance
// coefficients drawn at increasing spreads, and reports how the 90th
// percentile QoS degradation of each job type grows with variation —
// multi-node jobs finish when their slowest node finishes, so variation
// compounds into queueing delay.
//
//	go run ./examples/variation
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/experiments"
)

func main() {
	levels, err := experiments.Fig11(experiments.Fig11Config{
		Nodes:     200,
		Levels:    []float64{0, 0.15, 0.30},
		Trials:    3,
		Horizon:   20 * time.Minute,
		NodeScale: 5,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("200-node simulation, 75% utilization, QoS target Q ≤ 5 at P90")
	fmt.Println()
	var names []string
	for n := range levels[0].P90QoSByType {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-12s", "variation")
	for _, n := range names {
		fmt.Printf("  %-12s", n[:2])
	}
	fmt.Println(" track-ok")
	for _, lvl := range levels {
		fmt.Printf("%-12s", fmt.Sprintf("±%.0f%%", 100*lvl.Level))
		for _, n := range names {
			fmt.Printf("  %-12.2f", lvl.P90QoSByType[n])
		}
		fmt.Printf(" %3.0f%%\n", 100*lvl.TrackOKFraction)
	}
	fmt.Println()
	fmt.Println("expect each column to grow down the table: more node-to-node variation,")
	fmt.Println("more QoS degradation (Fig. 11's trend).")
}
