// Command anord is the ANOR cluster-tier power manager daemon (§4.1): it
// listens for job-tier endpoint connections, periodically re-reads a
// power-target schedule from a file (for experimental repeatability, as
// in the paper), distributes the available power across connected jobs
// with the selected budgeter policy, and logs power-tracking state.
//
// With -metrics it serves an admin HTTP endpoint: /metrics (Prometheus
// text), /healthz, and the net/http/pprof suite, exposing rebudget-loop
// duration, per-job allocated vs measured power, tracking error, and
// connected-endpoint counts while the daemon runs. With -events it
// streams structured budget-decision/cap-fan-out events as JSONL. With
// -telemetry it retains multi-resolution rollup series (1s/10s/60s) and
// serves them as /timeseries JSON for anor-top; -record additionally
// streams every sample into a binary flight-recorder file that anor-top
// can replay offline, and -profile-dir rotates continuous CPU/heap
// profiles. A per-job energy ledger always runs, serving /accounting
// (joules, watts, throttled seconds, and a conservation audit per job);
// -slo RULES evaluates declarative SLO rules over the telemetry rollups,
// serves the verdicts as /slo, and emits alert events on transitions.
//
// Usage:
//
//	anord -listen :9700 -nodes 16 -targets targets.jsonl \
//	      -budgeter even-slowdown -feedback -metrics :9790 \
//	      -trace tracking.csv -events events.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/budget"
	"repro/internal/clock"
	"repro/internal/clustermgr"
	"repro/internal/durable"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/schedule"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	listen := flag.String("listen", ":9700", "address to accept job-tier connections on")
	nodes := flag.Int("nodes", 16, "total cluster node count (for idle accounting)")
	targetsPath := flag.String("targets", "", "power-target schedule file (JSON lines; required)")
	budgeterName := flag.String("budgeter", "even-slowdown", "power budgeter: even-slowdown, even-power, or uniform")
	period := flag.Duration("period", 2*time.Second, "rebudget period")
	feedback := flag.Bool("feedback", false, "let trained job-tier models override precharacterized curves")
	heartbeat := flag.Duration("heartbeat", 10*time.Second, "evict endpoints silent for this long (ping at half); 0 disables")
	modelTTL := flag.Duration("model-ttl", 30*time.Second, "distrust trained models older than this, falling back to precharacterized curves; 0 disables")
	writeTimeout := flag.Duration("write-timeout", 5*time.Second, "per-endpoint wire-send deadline; a timed-out send drops the connection; 0 disables")
	defaultPolicy := flag.String("default", "least", "model for unknown job types: least or most sensitive")
	reserve := flag.Float64("reserve", 1100, "demand-response reserve in watts (for error reporting)")
	traceOut := flag.String("trace", "", "write the tracking series to this CSV file (flushed periodically and on shutdown)")
	traceFlush := flag.Duration("trace-flush", 15*time.Second, "how often to flush the -trace CSV (crash safety)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz, and pprof on this address (e.g. :9790); empty disables")
	eventsOut := flag.String("events", "", "stream structured JSONL events to this file; empty disables")
	telemetryOn := flag.Bool("telemetry", false, "retain multi-resolution rollup series in memory and serve /timeseries on the -metrics address")
	sloPath := flag.String("slo", "", "SLO rule file (JSON); evaluates rules over the -telemetry rollups, serves /slo on the -metrics address, and emits alert events")
	recordOut := flag.String("record", "", "append every telemetry sample to this binary flight-recorder file (implies -telemetry)")
	profileDir := flag.String("profile-dir", "", "rotate continuous CPU+heap profiles into this directory; empty disables")
	stateDir := flag.String("state-dir", "", "durable control-plane state directory (WAL + snapshots): sessions, models, caps, and the energy ledger survive a crash and restart with a bumped fencing epoch; empty disables")
	walFlush := flag.Duration("wal-flush", 50*time.Millisecond, "bounded-loss WAL fsync interval: a crash loses at most this window of journal records; 0 syncs every append")
	snapshotEvery := flag.Duration("snapshot-every", 30*time.Second, "how often to write a compacting control-plane snapshot and prune old WAL segments")
	verbose := flag.Bool("v", false, "enable debug logging")
	flag.Parse()

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level, "anord")
	fatalf := func(format string, args ...any) {
		logger.Errorf(format, args...)
		os.Exit(1)
	}

	if *targetsPath == "" {
		fatalf("-targets is required")
	}
	budgeter, err := budgeterByName(*budgeterName)
	if err != nil {
		fatalf("%v", err)
	}
	defModel, err := defaultModel(*defaultPolicy)
	if err != nil {
		fatalf("%v", err)
	}

	// Observability sinks: nil (no-op) unless the operator asked for them.
	var registry *obs.Registry
	if *metricsAddr != "" {
		registry = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatalf("creating events file: %v", err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f, fmt.Sprintf("anord-%d", os.Getpid()))
		defer tracer.Flush()
	}
	var store *telemetry.Store
	if *telemetryOn || *recordOut != "" {
		store = telemetry.NewStore()
		if *recordOut != "" {
			f, err := os.Create(*recordOut)
			if err != nil {
				fatalf("creating flight-recorder file: %v", err)
			}
			defer f.Close()
			rec := telemetry.NewRecorder(f)
			store.SetRecorder(rec)
			defer rec.Flush()
		}
		sampler := telemetry.StartSampler(telemetry.SamplerConfig{
			Store: store, Registry: registry, Tracer: tracer,
		})
		defer sampler.Close()
	}
	if *profileDir != "" {
		prof, err := obs.StartProfiler(obs.ProfilerConfig{Dir: *profileDir, Log: logger})
		if err != nil {
			fatalf("%v", err)
		}
		defer prof.Close()
	}
	var sloEngine *slo.Engine
	if *sloPath != "" {
		if store == nil {
			fatalf("-slo needs -telemetry: rules evaluate over the rollup store")
		}
		rules, err := slo.LoadFile(*sloPath)
		if err != nil {
			fatalf("loading SLO rules: %v", err)
		}
		sloEngine = slo.NewEngine(store, rules, tracer)
		logger.Infof("slo: %d rules loaded from %s", len(rules), *sloPath)
	}
	// The energy ledger is always on: attribution costs one map lookup
	// per connected job per tick, and the shutdown audit line plus the
	// /accounting endpoint are worth that even on small clusters.
	led := ledger.New()

	// Durable control plane: recover the previous generation's state (the
	// ledger continues the recovered accounts rather than starting fresh)
	// and journal this generation's changes under a bumped fencing epoch.
	var dstore *durable.Store
	var recovered *durable.ControlState
	if *stateDir != "" {
		s, rec, err := durable.Open(durable.Options{
			Dir: *stateDir, FlushEvery: *walFlush, SnapshotEvery: *snapshotEvery,
			Metrics: registry, Log: logger,
		})
		if err != nil {
			fatalf("opening state dir: %v", err)
		}
		dstore, recovered = s, rec.State
		led = rec.Ledger
		defer dstore.Close()
		logger.Infof("durable: epoch %d, recovered %d sessions / %d models / %d WAL records in %s (torn=%v corrupt=%d)",
			rec.Epoch, rec.Sessions, rec.Models, rec.WALRecords,
			time.Duration(rec.Duration), rec.TornTail, rec.Corrupt)
	}

	typeModels := map[string]perfmodel.Model{}
	for _, t := range workload.Catalog() {
		typeModels[t.Name] = t.RelativeModel()
	}

	start := time.Now()
	var mu sync.Mutex
	var points []schedule.TargetPoint
	reload := func() error {
		f, err := os.Open(*targetsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pts, err := schedule.ReadTargets(f)
		if err != nil {
			return err
		}
		mu.Lock()
		points = pts
		mu.Unlock()
		return nil
	}
	if err := reload(); err != nil {
		fatalf("loading targets: %v", err)
	}
	go func() {
		// The paper's manager re-reads its target file periodically so
		// operators can steer a live run.
		for range time.Tick(5 * time.Second) {
			if err := reload(); err != nil {
				logger.Warnf("reloading targets: %v", err)
			}
		}
	}()

	mgr, err := clustermgr.NewManager(clustermgr.Config{
		Clock:    clock.Real{},
		Budgeter: budgeter,
		Target: func(now time.Time) units.Power {
			mu.Lock()
			pts := points
			mu.Unlock()
			return schedule.TargetFunc(start, pts)(now)
		},
		Period:           *period,
		TotalNodes:       *nodes,
		IdlePower:        workload.NodeIdlePower,
		TypeModels:       typeModels,
		DefaultModel:     defModel,
		UseFeedback:      *feedback,
		HeartbeatTimeout: *heartbeat,
		ModelTTL:         *modelTTL,
		WriteTimeout:     *writeTimeout,
		Metrics:          registry,
		Tracer:           tracer,
		Telemetry:        store,
		Ledger:           led,
		Store:            dstore,
		Recovered:        recovered,
		Reserve:          units.Power(*reserve),
		Log:              logger,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *metricsAddr != "" {
		registry.Gauge("anord_start_time_seconds", "Unix time anord started.").Set(float64(start.Unix()))
		var mounts []obs.Mount
		if store != nil {
			mounts = append(mounts, obs.Mount{Pattern: "/timeseries", Handler: store.Handler()})
		}
		mounts = append(mounts, obs.Mount{Pattern: "/accounting",
			Handler: led.Handler(func() int64 { return time.Now().UnixMilli() })})
		if sloEngine != nil {
			mounts = append(mounts, obs.Mount{Pattern: "/slo", Handler: sloEngine.Handler()})
		}
		if dstore != nil {
			mounts = append(mounts, obs.Mount{Pattern: "/durable",
				Handler: dstore.StatusHandler(mgr.ControlState)})
		}
		admin, err := obs.StartAdmin(*metricsAddr, registry, nil, mounts...)
		if err != nil {
			fatalf("%v", err)
		}
		defer admin.Close()
		logger.Infof("admin endpoint on http://%s (/metrics, /healthz, /timeseries, /accounting, /debug/pprof/)", admin.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("%v", err)
	}
	logger.Infof("listening on %s, %d nodes, %s budgeter, feedback=%v",
		ln.Addr(), *nodes, budgeter.Name(), *feedback)
	go func() {
		if err := mgr.Serve(ln); err != nil {
			logger.Debugf("accept loop ended: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go mgr.Run(ctx)
	if sloEngine != nil {
		// Evaluate at the rebudget cadence: each verdict then reflects
		// the telemetry the loop just produced.
		go sloEngine.Run(ctx, *period)
	}

	// Flush the tracking series (and any event stream) periodically so a
	// crash mid-experiment loses at most one flush interval, not the
	// whole series. SIGINT/SIGTERM still get the final complete write
	// below.
	if *traceOut != "" || tracer != nil {
		go func() {
			interval := *traceFlush
			if interval <= 0 {
				interval = 15 * time.Second
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
					if *traceOut != "" {
						if err := writeTraceCSV(*traceOut, mgr.Tracking().Points()); err != nil {
							logger.Warnf("flushing %s: %v", *traceOut, err)
						}
					}
					if err := tracer.Flush(); err != nil {
						logger.Warnf("flushing events: %v", err)
					}
				}
			}
		}()
	}

	<-ctx.Done()
	// Graceful drain: stop accepting, close every session (handlers
	// journal byes and close ledger stints), then seal the durable state
	// with a final flush + snapshot so the next generation recovers a
	// clean image with nothing to replay.
	ln.Close()
	mgr.CloseSessions()
	drained := make(chan struct{})
	go func() { mgr.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		logger.Warnf("session drain timed out after 5s")
	}
	if dstore != nil {
		if err := dstore.Flush(); err != nil {
			logger.Warnf("final WAL flush: %v", err)
		}
		if err := dstore.Snapshot(mgr.ControlState); err != nil {
			logger.Warnf("final snapshot: %v", err)
		}
	}

	pts := mgr.Tracking().Points()
	sum := trace.Summarize(pts, units.Power(*reserve))
	logger.Infof("%d tracking points, mean |err| %s, P90 err %.1f%%, constraint ok=%v",
		sum.Points, sum.MeanAbsErr, 100*sum.P90Err, sum.WithinConstraint)
	acct := led.SnapshotAt(time.Now().UnixMilli())
	logger.Infof("energy: total %.0f J (jobs %.0f J, idle %.0f J), %d jobs opened, %d requeues, conserved=%v",
		acct.TotalJoules, acct.JobsJoules, acct.IdleJoules, acct.Opens, acct.Requeues, acct.Conserved)
	if sloEngine != nil {
		v := sloEngine.Evaluate(time.Now())
		logger.Infof("slo: %d fired, %d ok, %d no-data", v.Fired, v.OK, v.NoData)
	}
	if *traceOut != "" {
		if err := writeTraceCSV(*traceOut, pts); err != nil {
			fatalf("%v", err)
		}
		logger.Infof("wrote %s", *traceOut)
	}
}

// writeTraceCSV atomically replaces path with the current series: the
// periodic flusher and the shutdown path both call it, and readers never
// see a torn file.
func writeTraceCSV(path string, pts []trace.Point) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := trace.WriteCSV(f, pts); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func budgeterByName(name string) (budget.Budgeter, error) {
	switch name {
	case "even-slowdown":
		return budget.EvenSlowdown{}, nil
	case "even-power":
		return budget.EvenPower{}, nil
	case "uniform":
		return budget.Uniform{}, nil
	default:
		return nil, fmt.Errorf("anord: unknown budgeter %q", name)
	}
}

func defaultModel(policy string) (perfmodel.Model, error) {
	switch policy {
	case "least":
		return workload.LeastSensitive().RelativeModel(), nil
	case "most":
		return workload.MostSensitive().RelativeModel(), nil
	default:
		return perfmodel.Model{}, fmt.Errorf("anord: unknown default policy %q", policy)
	}
}
