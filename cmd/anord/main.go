// Command anord is the ANOR cluster-tier power manager daemon (§4.1): it
// listens for job-tier endpoint connections, periodically re-reads a
// power-target schedule from a file (for experimental repeatability, as
// in the paper), distributes the available power across connected jobs
// with the selected budgeter policy, and logs power-tracking state.
//
// Usage:
//
//	anord -listen :9700 -nodes 16 -targets targets.jsonl \
//	      -budgeter even-slowdown -feedback
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/budget"
	"repro/internal/clock"
	"repro/internal/clustermgr"
	"repro/internal/perfmodel"
	"repro/internal/schedule"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	listen := flag.String("listen", ":9700", "address to accept job-tier connections on")
	nodes := flag.Int("nodes", 16, "total cluster node count (for idle accounting)")
	targetsPath := flag.String("targets", "", "power-target schedule file (JSON lines; required)")
	budgeterName := flag.String("budgeter", "even-slowdown", "power budgeter: even-slowdown, even-power, or uniform")
	period := flag.Duration("period", 2*time.Second, "rebudget period")
	feedback := flag.Bool("feedback", false, "let trained job-tier models override precharacterized curves")
	defaultPolicy := flag.String("default", "least", "model for unknown job types: least or most sensitive")
	reserve := flag.Float64("reserve", 1100, "demand-response reserve in watts (for error reporting)")
	traceOut := flag.String("trace", "", "write the tracking series to this CSV file on exit")
	flag.Parse()

	if *targetsPath == "" {
		log.Fatal("anord: -targets is required")
	}
	budgeter, err := budgeterByName(*budgeterName)
	if err != nil {
		log.Fatal(err)
	}
	defModel, err := defaultModel(*defaultPolicy)
	if err != nil {
		log.Fatal(err)
	}

	typeModels := map[string]perfmodel.Model{}
	for _, t := range workload.Catalog() {
		typeModels[t.Name] = t.RelativeModel()
	}

	start := time.Now()
	var mu sync.Mutex
	var points []schedule.TargetPoint
	reload := func() error {
		f, err := os.Open(*targetsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pts, err := schedule.ReadTargets(f)
		if err != nil {
			return err
		}
		mu.Lock()
		points = pts
		mu.Unlock()
		return nil
	}
	if err := reload(); err != nil {
		log.Fatalf("anord: loading targets: %v", err)
	}
	go func() {
		// The paper's manager re-reads its target file periodically so
		// operators can steer a live run.
		for range time.Tick(5 * time.Second) {
			if err := reload(); err != nil {
				log.Printf("anord: reloading targets: %v", err)
			}
		}
	}()

	mgr, err := clustermgr.NewManager(clustermgr.Config{
		Clock:    clock.Real{},
		Budgeter: budgeter,
		Target: func(now time.Time) units.Power {
			mu.Lock()
			pts := points
			mu.Unlock()
			return schedule.TargetFunc(start, pts)(now)
		},
		Period:       *period,
		TotalNodes:   *nodes,
		IdlePower:    workload.NodeIdlePower,
		TypeModels:   typeModels,
		DefaultModel: defModel,
		UseFeedback:  *feedback,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("anord: listening on %s, %d nodes, %s budgeter, feedback=%v",
		ln.Addr(), *nodes, budgeter.Name(), *feedback)
	go func() {
		if err := mgr.Serve(ln); err != nil {
			log.Printf("anord: accept loop ended: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go mgr.Run(ctx)
	<-ctx.Done()
	ln.Close()

	pts := mgr.Tracking().Points()
	sum := trace.Summarize(pts, units.Power(*reserve))
	log.Printf("anord: %d tracking points, mean |err| %s, P90 err %.1f%%, constraint ok=%v",
		sum.Points, sum.MeanAbsErr, 100*sum.P90Err, sum.WithinConstraint)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteCSV(f, pts); err != nil {
			log.Fatal(err)
		}
		log.Printf("anord: wrote %s", *traceOut)
	}
}

func budgeterByName(name string) (budget.Budgeter, error) {
	switch name {
	case "even-slowdown":
		return budget.EvenSlowdown{}, nil
	case "even-power":
		return budget.EvenPower{}, nil
	case "uniform":
		return budget.Uniform{}, nil
	default:
		return nil, fmt.Errorf("anord: unknown budgeter %q", name)
	}
}

func defaultModel(policy string) (perfmodel.Model, error) {
	switch policy {
	case "least":
		return workload.LeastSensitive().RelativeModel(), nil
	case "most":
		return workload.MostSensitive().RelativeModel(), nil
	default:
		return perfmodel.Model{}, fmt.Errorf("anord: unknown default policy %q", policy)
	}
}
