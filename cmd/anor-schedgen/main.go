// Command anor-schedgen generates the input files the anord daemon and
// the experiments consume: Poisson job-submission schedules (§5.3) and
// moving power-target schedules (§4.4.1).
//
// Usage:
//
//	anor-schedgen jobs -nodes 16 -util 0.95 -minutes 60 -seed 1 \
//	              -misclassify bt.D.81=is.D.32 -out schedule.jsonl
//	anor-schedgen targets -avg 3400 -reserve 1100 -minutes 60 -seed 1 \
//	              -out targets.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/dr"
	"repro/internal/schedule"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "jobs":
		genJobs(os.Args[2:])
	case "targets":
		genTargets(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: anor-schedgen {jobs|targets} [flags]")
	os.Exit(2)
}

func genJobs(args []string) {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	nodes := fs.Int("nodes", 16, "cluster node count")
	util := fs.Float64("util", 0.95, "target utilization")
	minutes := fs.Float64("minutes", 60, "schedule length in minutes")
	seed := fs.Uint64("seed", 1, "generation seed")
	all := fs.Bool("all-types", false, "include the short-running IS and EP types")
	misclassify := fs.String("misclassify", "", "comma-separated true=claimed type pairs")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	types := workload.LongRunning()
	if *all {
		types = workload.Catalog()
	}
	mis := map[string]string{}
	if *misclassify != "" {
		for _, pair := range strings.Split(*misclassify, ",") {
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				log.Fatalf("anor-schedgen: bad -misclassify entry %q", pair)
			}
			mis[kv[0]] = kv[1]
		}
	}
	arrivals, err := schedule.Generate(schedule.Config{
		RNG:         stats.NewRNG(*seed),
		Types:       types,
		Utilization: *util,
		TotalNodes:  *nodes,
		Horizon:     time.Duration(*minutes * float64(time.Minute)),
		Misclassify: mis,
	})
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := schedule.Write(w, arrivals); err != nil {
		log.Fatal(err)
	}
	log.Printf("anor-schedgen: %d arrivals over %.0f minutes", len(arrivals), *minutes)
}

func genTargets(args []string) {
	fs := flag.NewFlagSet("targets", flag.ExitOnError)
	avg := fs.Float64("avg", 3400, "bid average power in watts")
	reserve := fs.Float64("reserve", 1100, "bid reserve in watts")
	minutes := fs.Float64("minutes", 60, "schedule length in minutes")
	step := fs.Duration("step", 4*time.Second, "target update interval")
	seed := fs.Uint64("seed", 1, "signal seed")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	horizon := time.Duration(*minutes * float64(time.Minute))
	bid := dr.Bid{AvgPower: units.Power(*avg), Reserve: units.Power(*reserve)}
	if !bid.Valid() {
		log.Fatal("anor-schedgen: invalid bid")
	}
	signal := dr.NewRandomWalk(*seed, *step, 0.25, horizon)
	var pts []schedule.TargetPoint
	for at := time.Duration(0); at <= horizon; at += *step {
		pts = append(pts, schedule.TargetPoint{At: at, Target: bid.Target(signal.At(at))})
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := schedule.WriteTargets(w, pts); err != nil {
		log.Fatal(err)
	}
	log.Printf("anor-schedgen: %d target points (%s to %s)", len(pts),
		bid.AvgPower-bid.Reserve, bid.AvgPower+bid.Reserve)
}
