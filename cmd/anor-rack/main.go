// Command anor-rack is the optional mid-tier proxy of the §8 scalability
// extension: it connects upstream to anord as if it were one large job,
// accepts downstream anor-endpoint connections on its own listen port,
// aggregates their power-performance models into a single rack curve, and
// re-balances each granted budget across its members with local
// even-slowdown allocation. The cluster manager's connection count drops
// from per-job to per-rack.
//
// Usage:
//
//	anor-rack -cluster localhost:9700 -listen :9800 -id rack-0 -jobs 4
//
// then point endpoints at the rack instead of the cluster:
//
//	anor-endpoint -cluster localhost:9800 -job j1 -bench bt.D.81
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/clock"
	"repro/internal/hier"
	"repro/internal/proto"
)

func main() {
	cluster := flag.String("cluster", "localhost:9700", "upstream cluster manager address")
	listen := flag.String("listen", ":9800", "address to accept job-tier connections on")
	id := flag.String("id", "rack-0", "rack identity toward the cluster manager")
	jobs := flag.Int("jobs", 1, "member jobs to wait for before announcing the rack upstream")
	flag.Parse()

	raw, err := net.Dial("tcp", *cluster)
	if err != nil {
		log.Fatalf("anor-rack: connecting upstream: %v", err)
	}
	proxy, err := hier.NewProxy(hier.ProxyConfig{
		ID:           *id,
		Upstream:     proto.NewConn(raw),
		ExpectedJobs: *jobs,
		Clock:        clock.Real{},
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("anor-rack: %s accepting members on %s, upstream %s, waiting for %d jobs",
		*id, ln.Addr(), *cluster, *jobs)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			proxy.AttachJob(proto.NewConn(c))
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := proxy.Run(ctx); err != nil && ctx.Err() == nil {
		log.Printf("anor-rack: %v", err)
	}
	ln.Close()
}
