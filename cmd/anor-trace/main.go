// Command anor-trace reconstructs cross-tier causal chains from the
// JSONL event files the ANOR daemons and simulator emit (-events), and
// reports decision-to-enforcement actuation latency: how long a
// cluster-tier budget decision takes to reach hardware enforcement
// through the wire, the job-tier policy write, and the GEOPM agent
// tree's fan-out (§4, §7.2).
//
// Usage:
//
//	anor-trace anord.jsonl endpoint-*.jsonl          # human summary
//	anor-trace -json session/*.jsonl                 # machine-readable
//	anor-trace -dot 3fa9 session/*.jsonl > one.dot   # one trace as Graphviz
//	anor-trace -strict session/*.jsonl               # exit 2 on orphans
//
// Pass every tier's file: spans link across files by trace and parent
// IDs, so omitting a tier turns its children into orphans (which is
// itself a useful integrity check — -strict fails CI on dropped spans).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/causal"
)

// summary is the -json output schema.
type summary struct {
	Files          int            `json:"files"`
	Events         map[string]int `json:"events"`
	Malformed      int            `json:"malformed_lines"`
	TornTails      int            `json:"torn_tails"`
	Traces         int            `json:"traces"`
	Spans          int            `json:"spans"`
	CompleteChains int            `json:"complete_chains"`
	OrphanSpans    int            `json:"orphan_spans"`
	LatencyP50     float64        `json:"latency_p50_seconds"`
	LatencyP95     float64        `json:"latency_p95_seconds"`
	LatencyP99     float64        `json:"latency_p99_seconds"`
	StalenessMean  float64        `json:"staleness_mean_seconds"`
	StalenessMax   float64        `json:"staleness_max_seconds"`
	StalenessN     int            `json:"staleness_decisions"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON summary instead of text")
	dot := flag.String("dot", "", "write the trace(s) whose ID starts with this prefix as Graphviz DOT to stdout, instead of a summary")
	strict := flag.Bool("strict", false, "exit 2 on orphaned spans or malformed lines (torn final lines from a killed process are tolerated)")
	topN := flag.Int("top", 5, "slowest chains to list in the text summary")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("anor-trace: need at least one JSONL event file (from anord/anor-endpoint/anor-sim -events)")
	}

	l, err := causal.LoadFiles(flag.Args()...)
	if err != nil {
		log.Fatalf("anor-trace: %v", err)
	}
	a := causal.Analyze(l)

	if *dot != "" {
		if err := a.WriteDOT(os.Stdout, l, *dot); err != nil {
			log.Fatalf("anor-trace: %v", err)
		}
		return
	}

	mean, max, n := a.StalenessStats()
	s := summary{
		Files: flag.NArg(), Events: l.Events, Malformed: l.Malformed, TornTails: l.TornTails,
		Traces: a.Traces, Spans: a.Spans,
		CompleteChains: len(a.Chains), OrphanSpans: len(a.Orphans),
		LatencyP50:    a.Latency.Quantile(0.50),
		LatencyP95:    a.Latency.Quantile(0.95),
		LatencyP99:    a.Latency.Quantile(0.99),
		StalenessMean: mean, StalenessMax: max, StalenessN: n,
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			log.Fatal(err)
		}
	} else {
		printText(s, a, *topN)
	}

	if *strict && (len(a.Orphans) > 0 || l.Malformed > 0) {
		fmt.Fprintf(os.Stderr, "anor-trace: %d orphaned spans, %d malformed lines\n", len(a.Orphans), l.Malformed)
		os.Exit(2)
	}
}

func printText(s summary, a *causal.Analysis, topN int) {
	fmt.Printf("anor-trace: %d file(s), %d spans in %d traces (%d malformed lines skipped, %d torn tails)\n",
		s.Files, s.Spans, s.Traces, s.Malformed, s.TornTails)
	fmt.Printf("  complete decision→enforcement chains: %d\n", s.CompleteChains)
	fmt.Printf("  orphaned spans (missing parents):     %d\n", s.OrphanSpans)
	if s.CompleteChains > 0 {
		fmt.Printf("  actuation latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
			s.LatencyP50*1e3, s.LatencyP95*1e3, s.LatencyP99*1e3)
	}
	if s.StalenessN > 0 {
		fmt.Printf("  model staleness at decision: mean %.3f s, max %.3f s over %d decisions\n",
			s.StalenessMean, s.StalenessMax, s.StalenessN)
	}

	if len(a.Chains) > 0 {
		chains := append([]causal.Chain(nil), a.Chains...)
		sort.Slice(chains, func(i, j int) bool {
			return chains[i].LatencySeconds() > chains[j].LatencySeconds()
		})
		n := len(chains)
		if n > topN {
			n = topN
		}
		fmt.Printf("  slowest chains:\n")
		for _, c := range chains[:n] {
			fmt.Printf("    %-8s job=%-12s %.3f ms  (trace %.8s)\n",
				hopNames(c), c.Job, c.LatencySeconds()*1e3, c.TraceID)
		}
	}
	for i, o := range a.Orphans {
		if i == 8 {
			fmt.Printf("  ... %d more orphans\n", len(a.Orphans)-8)
			break
		}
		fmt.Printf("  orphan: %s span=%s parent=%s job=%s\n", o.Name, o.ID, o.Parent, o.Job)
	}
}

// hopNames compresses a chain's path for the text listing.
func hopNames(c causal.Chain) string {
	out := ""
	for i, h := range c.Hops {
		if i > 0 {
			out += ">"
		}
		out += h.Name
	}
	return out
}
