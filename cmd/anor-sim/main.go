// Command anor-sim runs the tabular cluster simulator of §5.6: a
// 1000-node-class cluster under a demand-response power target, with
// optional per-node performance variation, reporting QoS degradation and
// power-tracking metrics.
//
// Usage:
//
//	anor-sim -nodes 1000 -hours 1 -util 0.75 -variation 0.15 -seed 1 \
//	         -scale 25 -table state.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/dr"
	"repro/internal/perfmodel"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 1000, "simulated node count")
	hours := flag.Float64("hours", 1, "arrival-window length in hours")
	util := flag.Float64("util", 0.75, "target node utilization")
	variation := flag.Float64("variation", 0, "performance-variation level (99% of nodes within ±X, e.g. 0.15)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	scale := flag.Int("scale", 25, "node-count multiplier applied to each job type")
	avg := flag.Float64("avg", 0, "bid average power in watts (0 = 80% of probed natural draw)")
	reserve := flag.Float64("reserve", 0, "bid reserve in watts (0 = 15% of probed natural draw)")
	policy := flag.String("budgeter", "", "per-job budgeter (even-slowdown, even-power); empty = AQA uniform caps")
	feedback := flag.Bool("feedback", false, "exempt at-risk jobs from capping (§6.4 mitigation)")
	table := flag.String("table", "", "write per-second cluster state CSV here")
	flag.Parse()

	var types []workload.Type
	weights := map[string]float64{}
	for _, t := range workload.LongRunning() {
		st := t.Scale(*scale)
		types = append(types, st)
		weights[st.Name] = 1
	}
	horizon := time.Duration(*hours * float64(time.Hour))

	arrivals, err := schedule.Generate(schedule.Config{
		RNG: stats.NewRNG(*seed), Types: types,
		Utilization: *util, TotalNodes: *nodes, Horizon: horizon,
	})
	if err != nil {
		log.Fatal(err)
	}

	bid := dr.Bid{AvgPower: units.Power(*avg), Reserve: units.Power(*reserve)}
	if bid.AvgPower == 0 || bid.Reserve == 0 {
		probe, err := sim.Run(sim.Config{
			Nodes: *nodes, Types: types, Weights: weights, Arrivals: arrivals,
			Bid:    dr.Bid{AvgPower: units.Power(*nodes) * workload.NodeTDP, Reserve: 0},
			Signal: dr.Constant(0), Horizon: horizon, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if bid.AvgPower == 0 {
			bid.AvgPower = units.Power(0.80 * probe.AvgPower.Watts())
		}
		if bid.Reserve == 0 {
			bid.Reserve = units.Power(0.15 * probe.AvgPower.Watts())
		}
		log.Printf("anor-sim: probed natural draw %s → bid avg %s reserve %s",
			probe.AvgPower, bid.AvgPower, bid.Reserve)
	}

	cfg := sim.Config{
		Nodes: *nodes, Types: types, Weights: weights, Arrivals: arrivals,
		Bid:               bid,
		Signal:            dr.NewRandomWalk(*seed^0x5eed, 4*time.Second, 0.25, 8*horizon),
		Horizon:           horizon,
		Seed:              *seed,
		VariationStd:      *variation / 2.576, // 99% within ±level
		FeedbackQoSExempt: *feedback,
		TrackWarmup:       2 * time.Minute,
	}
	switch *policy {
	case "":
	case "even-slowdown":
		cfg.Budgeter = budget.EvenSlowdown{}
	case "even-power":
		cfg.Budgeter = budget.EvenPower{}
	default:
		log.Fatalf("anor-sim: unknown budgeter %q", *policy)
	}
	if cfg.Budgeter != nil {
		cfg.TypeModels = map[string]perfmodel.Model{}
		for _, t := range types {
			cfg.TypeModels[t.Name] = t.RelativeModel()
		}
		cfg.DefaultModel = workload.LeastSensitive().RelativeModel()
	}
	if *table != "" {
		f, err := os.Create(*table)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.TableLog = f
	}

	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("jobs completed: %d (unfinished %d)\n", len(res.Jobs), res.Unfinished)
	fmt.Printf("mean utilization: %.1f%%\n", 100*res.MeanUtilization)
	fmt.Printf("average power: %s\n", res.AvgPower)
	fmt.Printf("tracking: P90 err %.1f%% of reserve, constraint(≤30%% @90%%) ok=%v\n",
		100*res.TrackSummary.P90Err, res.TrackSummary.WithinConstraint)
	fmt.Printf("QoS degradation: P90 %.2f (target ≤ 5)\n", res.QoS90)
	var names []string
	for n := range res.QoSByType {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		qs := res.QoSByType[n]
		fmt.Printf("  %-10s n=%3d  P90 QoS %.2f\n", n, len(qs), stats.Percentile(qs, 90))
	}
}
