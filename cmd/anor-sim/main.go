// Command anor-sim runs the tabular cluster simulator of §5.6: a
// 1000-node-class cluster under a demand-response power target, with
// optional per-node performance variation, reporting QoS degradation and
// power-tracking metrics.
//
// Usage:
//
//	anor-sim -nodes 1000 -hours 1 -util 0.75 -variation 0.15 -seed 1 \
//	         -scale 25 -table state.csv
//	anor-sim -nodes 1000 -runs 8 -parallel 4 -seed 1   # multi-seed sweep
//
// With -runs > 1 a live progress/throughput line updates on stderr
// (disable with -progress=false); -events streams dr_bid and sim_step
// JSONL events. With -telemetry ADDR the run serves /metrics,
// /timeseries, and pprof so anor-top can attach live; -record FILE
// streams every telemetry sample into a flight-recorder file replayable
// with anor-top -replay, and -profile-dir rotates continuous CPU/heap
// profiles. Single runs carry a per-job energy ledger (printed after the
// run and served live as /accounting), and -slo RULES evaluates
// declarative SLO rules over the virtual-time rollups, printing a
// machine-readable slo-verdict: line. None of it changes any simulated
// number: observability is strictly read-only against the deterministic
// sharded simulator.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/dr"
	"repro/internal/faults"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/tracein"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 1000, "simulated node count")
	hours := flag.Float64("hours", 1, "arrival-window length in hours")
	util := flag.Float64("util", 0.75, "target node utilization")
	variation := flag.Float64("variation", 0, "performance-variation level (99% of nodes within ±X, e.g. 0.15)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	scale := flag.Int("scale", 25, "node-count multiplier applied to each job type")
	avg := flag.Float64("avg", 0, "bid average power in watts (0 = 80% of probed natural draw)")
	reserve := flag.Float64("reserve", 0, "bid reserve in watts (0 = 15% of probed natural draw)")
	policy := flag.String("budgeter", "", "per-job budgeter (even-slowdown, even-power); empty = AQA uniform caps")
	feedback := flag.Bool("feedback", false, "exempt at-risk jobs from capping (§6.4 mitigation)")
	table := flag.String("table", "", "write per-second cluster state CSV here")
	failuresPath := flag.String("failures", "", "node fail-stop/recovery schedule (JSON lines: {\"at_ns\",\"node\",\"kind\"}); empty disables")
	runs := flag.Int("runs", 1, "independent runs; >1 reports per-run lines plus mean±std aggregates")
	parallel := flag.Int("parallel", 0, "concurrent runs when -runs > 1 (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "node-table shards per simulated second (0 = auto; forced to 1 inside a multi-run sweep)")
	progress := flag.Bool("progress", true, "print a live progress/throughput line on stderr when -runs > 1")
	eventsOut := flag.String("events", "", "stream structured JSONL events (dr_bid, sim_step) to this file; empty disables")
	tracePath := flag.String("trace", "", "stream arrivals from a job trace (.csv or .jsonl) instead of the synthetic generator; -util and -scale are ignored")
	eventDriven := flag.Bool("event-driven", true, "skip provably no-op per-second work and fast-forward idle intervals (results are bit-identical either way)")
	calendar := flag.Bool("calendar", true, "advance job progress via the closed-form completion calendar instead of per-node per-second updates (results are bit-identical either way)")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics, /timeseries, and pprof on this address so anor-top can attach live; empty disables")
	recordOut := flag.String("record", "", "write every telemetry sample to this binary flight-recorder file (replayable with anor-top -replay)")
	profileDir := flag.String("profile-dir", "", "rotate continuous CPU+heap profiles into this directory; empty disables")
	sloPath := flag.String("slo", "", "SLO rule file (JSON): rules are evaluated against the run's virtual-time rollups and the verdict prints as a machine-readable slo-verdict: line (single run)")
	flag.Parse()
	if *runs < 1 {
		log.Fatalf("anor-sim: -runs must be ≥ 1 (got %d)", *runs)
	}
	if *table != "" && *runs > 1 {
		log.Fatal("anor-sim: -table writes one run's state; use it with -runs=1")
	}
	if *sloPath != "" && *runs > 1 {
		log.Fatal("anor-sim: -slo evaluates one run's virtual-time series; use it with -runs=1")
	}

	var failures []faults.NodeEvent
	if *failuresPath != "" {
		f, err := os.Open(*failuresPath)
		if err != nil {
			log.Fatal(err)
		}
		failures, err = faults.ReadNodeSchedule(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		faults.SortNodeSchedule(failures)
		if err := faults.ValidateNodeSchedule(failures, *nodes); err != nil {
			log.Fatal(err)
		}
	}

	horizon := time.Duration(*hours * float64(time.Hour))

	// Arrivals come either from a streamed trace file (each run opens its
	// own reader; jobs never reside in memory as one slice) or from the
	// synthetic generator.
	var types []workload.Type
	var weights map[string]float64
	var arrivals []schedule.Arrival
	openTrace := func() *tracein.Reader {
		r, err := tracein.Open(*tracePath, tracein.Options{MaxNodes: *nodes})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	if *tracePath == "" {
		weights = map[string]float64{}
		for _, t := range workload.LongRunning() {
			st := t.Scale(*scale)
			types = append(types, st)
			weights[st.Name] = 1
		}
		var err error
		arrivals, err = schedule.Generate(schedule.Config{
			RNG: stats.NewRNG(*seed), Types: types,
			Utilization: *util, TotalNodes: *nodes, Horizon: horizon,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	var tracer *obs.Tracer
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f, fmt.Sprintf("anor-sim-%d", os.Getpid()))
		defer tracer.Flush()
	}

	// Telemetry: retained rollup series (sim series in virtual time,
	// runtime health in wall time), optionally teed into a flight-recorder
	// file and served as /timeseries for a live anor-top.
	var store *telemetry.Store
	var registry *obs.Registry
	// The energy ledger follows the telemetry rule: one run's virtual
	// timeline per ledger (sweep runs would all stamp the same virtual
	// milliseconds and collide), so only single runs carry one.
	var led *ledger.Ledger
	if *runs == 1 {
		led = ledger.New()
	}
	var sloEngine *slo.Engine
	if *telemetryAddr != "" || *recordOut != "" || *sloPath != "" {
		store = telemetry.NewStore()
		registry = obs.NewRegistry()
		if *recordOut != "" {
			f, err := os.Create(*recordOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			rec := telemetry.NewRecorder(f)
			store.SetRecorder(rec)
			defer rec.Flush()
		}
		if *sloPath != "" {
			rules, err := slo.LoadFile(*sloPath)
			if err != nil {
				log.Fatal(err)
			}
			sloEngine = slo.NewEngine(store, rules, tracer)
			if led != nil {
				// A live /slo scrape mid-run evaluates at the virtual
				// front the ledger has settled to, not wall time.
				sloEngine.SetNow(func() time.Time { return time.UnixMilli(led.LastMs()) })
			}
		}
		sampler := telemetry.StartSampler(telemetry.SamplerConfig{
			Store: store, Registry: registry, Tracer: tracer,
		})
		defer sampler.Close()
		if *telemetryAddr != "" {
			mounts := []obs.Mount{{Pattern: "/timeseries", Handler: store.Handler()}}
			if led != nil {
				mounts = append(mounts, obs.Mount{Pattern: "/accounting", Handler: led.Handler(led.LastMs)})
			}
			if sloEngine != nil {
				mounts = append(mounts, obs.Mount{Pattern: "/slo", Handler: sloEngine.Handler()})
			}
			admin, err := obs.StartAdmin(*telemetryAddr, registry, nil, mounts...)
			if err != nil {
				log.Fatal(err)
			}
			defer admin.Close()
			log.Printf("anor-sim: telemetry on http://%s (/metrics, /timeseries, /accounting, /debug/pprof/)", admin.Addr())
		}
	}
	if *profileDir != "" {
		prof, err := obs.StartProfiler(obs.ProfilerConfig{Dir: *profileDir})
		if err != nil {
			log.Fatal(err)
		}
		defer prof.Close()
	}

	bid := dr.Bid{AvgPower: units.Power(*avg), Reserve: units.Power(*reserve)}
	if bid.AvgPower == 0 || bid.Reserve == 0 {
		// The probe always uses the base seed's schedule so the bid — an
		// input shared by every run — does not depend on -runs.
		probeCfg := sim.Config{
			Nodes: *nodes, Types: types, Weights: weights, Arrivals: arrivals,
			Bid:    dr.Bid{AvgPower: units.Power(*nodes) * workload.NodeTDP, Reserve: 0},
			Signal: dr.Constant(0), Horizon: horizon, Seed: *seed, Shards: *shards,
			DisableEventDriven: !*eventDriven,
			DisableCalendar:    !*calendar,
		}
		if *tracePath != "" {
			r := openTrace()
			defer r.Close()
			probeCfg.Arrivals, probeCfg.Source = nil, r
		}
		probe, err := sim.Run(probeCfg)
		if err != nil {
			log.Fatal(err)
		}
		if bid.AvgPower == 0 {
			bid.AvgPower = units.Power(0.80 * probe.AvgPower.Watts())
		}
		if bid.Reserve == 0 {
			bid.Reserve = units.Power(0.15 * probe.AvgPower.Watts())
		}
		log.Printf("anor-sim: probed natural draw %s → bid avg %s reserve %s",
			probe.AvgPower, bid.AvgPower, bid.Reserve)
	}
	if tracer.Enabled() {
		tracer.Emit(obs.Event{Type: obs.EvDRBid, Fields: obs.F{
			"avg_w": bid.AvgPower.Watts(), "reserve_w": bid.Reserve.Watts(),
		}})
	}

	var budgeter budget.Budgeter
	switch *policy {
	case "":
	case "even-slowdown":
		budgeter = budget.EvenSlowdown{}
	case "even-power":
		budgeter = budget.EvenPower{}
	default:
		log.Fatalf("anor-sim: unknown budgeter %q", *policy)
	}
	// Shared read-only inputs: types, weights, typeModels, and the bid are
	// built once and shared across all runs (sim.Run never mutates them).
	var typeModels map[string]perfmodel.Model
	var defaultModel perfmodel.Model
	if budgeter != nil {
		typeModels = map[string]perfmodel.Model{}
		for _, t := range types {
			typeModels[t.Name] = t.RelativeModel()
		}
		defaultModel = workload.LeastSensitive().RelativeModel()
	}
	stepCounter := obs.NewCounter()
	mkConfig := func(runSeed uint64, arr []schedule.Arrival, runShards int, runID string) sim.Config {
		cfg := sim.Config{
			Nodes: *nodes, Types: types, Weights: weights, Arrivals: arr,
			Bid:                bid,
			Signal:             dr.NewRandomWalk(runSeed^0x5eed, 4*time.Second, 0.25, 8*horizon),
			Horizon:            horizon,
			Seed:               runSeed,
			Shards:             runShards,
			VariationStd:       *variation / 2.576, // 99% within ±level
			FeedbackQoSExempt:  *feedback,
			Failures:           failures,
			Budgeter:           budgeter,
			TypeModels:         typeModels,
			DefaultModel:       defaultModel,
			DisableEventDriven: !*eventDriven,
			DisableCalendar:    !*calendar,
			TrackWarmup:        2 * time.Minute,
			Tracer:             tracer,
			Progress:           stepCounter,
			RunID:              runID,
		}
		if *tracePath != "" {
			// Each run streams the trace through its own reader; the
			// caller is responsible for closing it after sim.Run returns.
			cfg.Arrivals, cfg.Source = nil, openTrace()
		}
		return cfg
	}

	if *runs == 1 {
		cfg := mkConfig(*seed, arrivals, *shards, "run0")
		// Sim series carry virtual timestamps; only a single run records
		// them (concurrent sweep runs would all stamp the same virtual
		// seconds and collide in one store).
		cfg.Telemetry = store
		cfg.Metrics = registry
		cfg.Ledger = led
		if *table != "" {
			f, err := os.Create(*table)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			cfg.TableLog = f
		}
		res, err := sim.Run(cfg)
		if r, ok := cfg.Source.(*tracein.Reader); ok {
			r.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		printRun(res)
		printEnergy(led)
		if sloEngine != nil {
			// Pin evaluation to the run's virtual end so window math
			// sees the same "now" the recorded series were stamped with.
			end := time.UnixMilli(led.LastMs())
			if n := len(res.Tracking); n > 0 {
				end = res.Tracking[n-1].Time.Add(time.Second)
			}
			sloEngine.SetNow(func() time.Time { return end })
			verdict, _ := json.Marshal(sloEngine.Evaluate(end))
			fmt.Printf("slo-verdict: %s\n", verdict)
		}
		return
	}

	// Multi-run sweep: each run derives its seed from the flat run index,
	// so results are deterministic in -seed regardless of -parallel. The
	// sweep saturates the worker pool, so each simulator keeps its own
	// node-table sharding off unless -shards was set explicitly.
	innerShards := *shards
	if innerShards == 0 {
		innerShards = 1
	}
	runsDone := obs.NewCounter()
	stopProgress := startProgress(*progress, *runs, stepCounter, runsDone)
	results, err := sweep.Map(context.Background(), *runs,
		sweep.Options{Workers: *parallel, OnRunDone: func(int) { runsDone.Inc() }, Telemetry: store},
		func(_ context.Context, run int) (sim.Result, error) {
			runSeed := sweep.DeriveSeed(*seed, run)
			var arr []schedule.Arrival
			if *tracePath == "" {
				var err error
				arr, err = schedule.Generate(schedule.Config{
					RNG: stats.NewRNG(runSeed), Types: types,
					Utilization: *util, TotalNodes: *nodes, Horizon: horizon,
				})
				if err != nil {
					return sim.Result{}, err
				}
			}
			cfg := mkConfig(runSeed, arr, innerShards, fmt.Sprintf("run%d", run))
			res, err := sim.Run(cfg)
			if r, ok := cfg.Source.(*tracein.Reader); ok {
				r.Close()
			}
			return res, err
		})
	stopProgress()
	if err != nil {
		log.Fatal(err)
	}
	printAggregate(*seed, results)
}

// startProgress launches the live progress/throughput line on stderr:
// runs completed, simulated seconds advanced across all workers, and
// sim-seconds-per-wallclock-second throughput. Progress counters are
// read-only taps on the sweep, so the display never perturbs results.
// The returned stop function erases the line and joins the printer.
func startProgress(enabled bool, runs int, steps, runsDone *obs.Counter) func() {
	if !enabled || runs <= 1 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		var last uint64
		for {
			select {
			case <-done:
				fmt.Fprintf(os.Stderr, "\r\x1b[K")
				return
			case <-tick.C:
				s := steps.Value()
				fmt.Fprintf(os.Stderr, "\ranor-sim: %d/%d runs done, %d sim-s advanced, %d sim-s/s   ",
					runsDone.Value(), runs, s, s-last)
				last = s
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// printEnergy reports the per-job energy accounting: the conservation
// audit line plus the top consumers by joules.
func printEnergy(led *ledger.Ledger) {
	if led == nil {
		return
	}
	a := led.SnapshotAt(led.LastMs())
	audit := "audit ok"
	if !a.Conserved {
		audit = fmt.Sprintf("AUDIT BROKEN Δ=%dµJ errs=%d", a.ConservationDeltaMicroJ, a.Errors)
	}
	fmt.Printf("energy: total %.0f J (jobs %.0f J, idle %.0f J), %d requeues, %s\n",
		a.TotalJoules, a.JobsJoules, a.IdleJoules, a.Requeues, audit)
	for _, j := range a.Top(5) {
		fmt.Printf("  %-14s %-10s %12.0f J  avg %7.1f W  peak %7.1f W  thr %5.0f s  n=%d\n",
			j.ID, j.Type, j.Joules, j.AvgWatts, j.PeakWatts, j.ThrottledS, j.Nodes)
	}
}

// printRun reports one simulation in full detail.
func printRun(res sim.Result) {
	fmt.Printf("jobs completed: %d (unfinished %d)\n", len(res.Jobs), res.Unfinished)
	if res.Requeues > 0 {
		fmt.Printf("failure requeues: %d\n", res.Requeues)
	}
	fmt.Printf("mean utilization: %.1f%%\n", 100*res.MeanUtilization)
	fmt.Printf("average power: %s\n", res.AvgPower)
	fmt.Printf("tracking: P90 err %.1f%% of reserve, constraint(≤30%% @90%%) ok=%v\n",
		100*res.TrackSummary.P90Err, res.TrackSummary.WithinConstraint)
	fmt.Printf("QoS degradation: P90 %.2f (target ≤ 5)\n", res.QoS90)
	var names []string
	for n := range res.QoSByType {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		qs := res.QoSByType[n]
		fmt.Printf("  %-10s n=%3d  P90 QoS %.2f\n", n, len(qs), stats.Percentile(qs, 90))
	}
}

// printAggregate reports a per-run summary line followed by mean±std
// aggregates across the sweep.
func printAggregate(baseSeed uint64, results []sim.Result) {
	var qos90, p90Err, avgPower, utilization []float64
	trackOK := 0
	for run, res := range results {
		fmt.Printf("run %2d (seed %#016x): jobs %4d  util %5.1f%%  avg %s  P90 err %5.1f%%  P90 QoS %.2f  ok=%v\n",
			run, sweep.DeriveSeed(baseSeed, run), len(res.Jobs), 100*res.MeanUtilization,
			res.AvgPower, 100*res.TrackSummary.P90Err, res.QoS90,
			res.TrackSummary.WithinConstraint)
		qos90 = append(qos90, res.QoS90)
		p90Err = append(p90Err, res.TrackSummary.P90Err)
		avgPower = append(avgPower, res.AvgPower.Watts())
		utilization = append(utilization, res.MeanUtilization)
		if res.TrackSummary.WithinConstraint {
			trackOK++
		}
	}
	meanStd := func(xs []float64) (float64, float64) {
		m := stats.Mean(xs)
		if len(xs) < 2 {
			return m, 0
		}
		return m, stats.StdDev(xs)
	}
	fmt.Printf("\naggregate over %d runs:\n", len(results))
	m, s := meanStd(qos90)
	fmt.Printf("  P90 QoS degradation: %.2f ± %.2f (target ≤ 5)\n", m, s)
	m, s = meanStd(p90Err)
	fmt.Printf("  P90 tracking error:  %.1f%% ± %.1f%% of reserve\n", 100*m, 100*s)
	m, s = meanStd(avgPower)
	fmt.Printf("  average power:       %s ± %s\n", units.Power(m), units.Power(math.Round(s)))
	m, s = meanStd(utilization)
	fmt.Printf("  mean utilization:    %.1f%% ± %.1f%%\n", 100*m, 100*s)
	fmt.Printf("  tracking constraint: %d/%d runs ok\n", trackOK, len(results))
}
