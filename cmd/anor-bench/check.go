package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

// Tolerances for the perf-regression gate (documented in the CI
// workflow, which runs `anor-bench -quick check` on every push).
const (
	// speedTolerance is the fractional steps/s drop allowed before the
	// gate fails: wall-clock throughput is noisy, so a measurement must
	// fall more than 25% below the recorded baseline to count as a
	// regression. Enforced only when the baseline was recorded on the
	// same CPU model; cross-machine speed deltas are reported but
	// advisory.
	speedTolerance = 0.25
	// allocSlack is the absolute allocs-per-step growth allowed. The
	// engine is allocation-free at steady state, so allocs/step is a
	// machine-independent invariant: any real growth is a leak in the hot
	// loop. The slack only absorbs whole-run amortization jitter
	// (setup allocations divided by a slightly different step count).
	allocSlack = 0.5
)

// check is the CI perf-regression gate: it takes a fresh measurement for
// each (nodes, maxprocs) cell that has a recorded baseline in the
// -perf-json history (default BENCH_sim.json) and fails the process when
// throughput regressed beyond tolerance or the hot loop gained
// allocations. -quick limits the matrix exactly as it does for perf.
func check() {
	path := *perfJSON
	if path == "" {
		path = "BENCH_sim.json"
	}
	doc, err := loadBenchFile(path)
	if err != nil {
		log.Fatal(err)
	}
	repeats := 3
	if *quick {
		repeats = 1
	}
	cpu := cpuModel()
	failed := false
	checked := 0
	for _, cell := range perfMatrix {
		if *quick && cell.nodes > 100000 {
			continue
		}
		base, ok := latestBaseline(doc.Entries, cell.nodes, cell.maxprocs)
		if !ok {
			fmt.Printf("check: nodes=%d maxprocs=%d: no baseline in %s, skipping\n", cell.nodes, cell.maxprocs, path)
			continue
		}
		res, err := experiments.SimPerf(experiments.SimPerfConfig{
			Nodes: cell.nodes, Repeats: repeats, Seed: *seed, MaxProcs: cell.maxprocs,
		})
		if err != nil {
			log.Fatal(err)
		}
		checked++
		failures, notes := compareBench(res, cpu, base, speedTolerance, allocSlack)
		status := "ok"
		if len(failures) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("check: nodes=%d maxprocs=%d: %s (%.0f steps/s vs baseline %.0f from %s; %.2f allocs/step vs %.2f)\n",
			cell.nodes, cell.maxprocs, status, res.StepsPerSec, base.StepsPerSec, base.Date,
			res.AllocsPerStep, base.AllocsPerStep)
		for _, f := range failures {
			fmt.Printf("  FAIL: %s\n", f)
		}
		for _, n := range notes {
			fmt.Printf("  advisory: %s\n", n)
		}
	}
	if checked == 0 {
		log.Fatalf("check: no (nodes, maxprocs) cell had a baseline in %s", path)
	}
	if !checkTelemetryBudget(repeats) {
		failed = true
	}
	if !checkLedgerBudget(repeats) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("check: %d cells within tolerance (speed -%.0f%% same-CPU, allocs +%.1f/step)\n",
		checked, 100*speedTolerance, allocSlack)
}

// checkTelemetryBudget gates the retained-telemetry overhead: the same
// cell measured with the rollup store and flight recorder attached must
// stay within allocSlack allocs/step of the telemetry-off run. This is
// self-relative (both measurements are fresh, same machine), so it
// needs no recorded baseline and never trips on hardware differences.
func checkTelemetryBudget(repeats int) bool {
	base := experiments.SimPerfConfig{Nodes: 1000, Repeats: repeats, Seed: *seed, MaxProcs: 4}
	off, err := experiments.SimPerf(base)
	if err != nil {
		log.Fatal(err)
	}
	withTel := base
	withTel.Telemetry = true
	on, err := experiments.SimPerf(withTel)
	if err != nil {
		log.Fatal(err)
	}
	delta := on.AllocsPerStep - off.AllocsPerStep
	status := "ok"
	if delta > allocSlack {
		status = "FAIL"
	}
	fmt.Printf("check: telemetry alloc budget: %s (enabling telemetry: %.2f → %.2f allocs/step, limit +%.1f)\n",
		status, off.AllocsPerStep, on.AllocsPerStep, allocSlack)
	return status == "ok"
}

// checkLedgerBudget gates the energy-accounting overhead the same
// self-relative way: the cell measured with the per-job ledger attached
// must stay within allocSlack allocs/step of the ledger-off run.
func checkLedgerBudget(repeats int) bool {
	base := experiments.SimPerfConfig{Nodes: 1000, Repeats: repeats, Seed: *seed, MaxProcs: 4}
	off, err := experiments.SimPerf(base)
	if err != nil {
		log.Fatal(err)
	}
	withLed := base
	withLed.Ledger = true
	on, err := experiments.SimPerf(withLed)
	if err != nil {
		log.Fatal(err)
	}
	delta := on.AllocsPerStep - off.AllocsPerStep
	status := "ok"
	if delta > allocSlack {
		status = "FAIL"
	}
	fmt.Printf("check: ledger alloc budget: %s (enabling accounting: %.2f → %.2f allocs/step, limit +%.1f)\n",
		status, off.AllocsPerStep, on.AllocsPerStep, allocSlack)
	return status == "ok"
}

// loadBenchFile reads a perf history file; a missing file is an error
// here (the gate needs a baseline to gate against).
func loadBenchFile(path string) (benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return benchFile{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return doc, nil
}

// latestBaseline returns the most recent history entry matching the
// (nodes, maxprocs) cell.
func latestBaseline(entries []benchEntry, nodes, maxprocs int) (benchEntry, bool) {
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Nodes == nodes && entries[i].MaxProcs == maxprocs {
			return entries[i], true
		}
	}
	return benchEntry{}, false
}

// compareBench applies the gate rules to one measurement against its
// baseline, returning hard failures and advisory notes.
//
//   - allocs/step growth beyond allocSlack always fails: allocation
//     counts are deterministic per workload and machine-independent, so
//     growth means the hot loop regressed.
//   - steps/s more than speedTol below the baseline fails when the
//     baseline is comparable — recorded on this CPU model with this Go
//     toolchain. When no comparable baseline exists, an explicit
//     `advisory:` line says so (and carries the speed delta when one
//     tripped), because cross-machine wall-clock comparisons would make
//     the gate fail on hardware, not code.
func compareBench(cur experiments.SimPerfResult, curCPU string, base benchEntry, speedTol, allocSlack float64) (failures, notes []string) {
	if cur.AllocsPerStep > base.AllocsPerStep+allocSlack {
		failures = append(failures, fmt.Sprintf(
			"allocs/step grew %.2f → %.2f (limit +%.1f): the steady-state loop is allocating",
			base.AllocsPerStep, cur.AllocsPerStep, allocSlack))
	}
	comparable := base.CPU != "" && curCPU != "" && base.CPU == curCPU &&
		base.GoVersion == cur.GoVersion
	if !comparable {
		notes = append(notes, fmt.Sprintf(
			"no comparable baseline — recorded on %q/%s, running on %q/%s — speed gate not enforced",
			base.CPU, base.GoVersion, curCPU, cur.GoVersion))
	}
	if base.StepsPerSec <= 0 {
		return failures, notes
	}
	drop := 1 - cur.StepsPerSec/base.StepsPerSec
	if drop <= speedTol {
		return failures, notes
	}
	msg := fmt.Sprintf("steps/s dropped %.0f%% (%.0f → %.0f, tolerance %.0f%%)",
		100*drop, base.StepsPerSec, cur.StepsPerSec, 100*speedTol)
	if comparable {
		failures = append(failures, msg)
	} else {
		notes = append(notes, msg)
	}
	return failures, notes
}
