package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func trials(full int) int {
	if *quick {
		if full > 2 {
			return 2
		}
	}
	return full
}

func horizon(full time.Duration) time.Duration {
	if *quick {
		return full / 6
	}
	return full
}

func fig3() {
	series, err := experiments.Fig3(experiments.Fig3Config{Runs: trials(10), Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 3 — execution time vs power cap, relative to 280 W (mean ± std over runs)")
	fmt.Printf("%-10s", "cap (W)")
	for _, s := range series {
		fmt.Printf("  %-14s", s.Name)
	}
	fmt.Println()
	for i := range series[0].X {
		fmt.Printf("%-10.0f", series[0].X[i])
		for _, s := range series {
			fmt.Printf("  %5.3f ± %5.3f", s.Y[i], s.Spread[i])
		}
		fmt.Println()
	}
}

func fit() {
	rows, err := experiments.FitTable(experiments.FitTableConfig{Runs: trials(10), Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§5.1 — precharacterization fit quality (T = A·P² + B·P + C)")
	fmt.Printf("%-10s  %-6s  %s\n", "type", "R²", "model")
	for _, r := range rows {
		fmt.Printf("%-10s  %.3f  %v\n", r.TypeName, r.R2, r.Model)
	}
}

func fig4() {
	res := experiments.Fig4(experiments.Fig4Config{})
	fmt.Println("Fig. 4 — estimated job slowdown under shared cluster budgets")
	for _, name := range []string{"even-slowdown", "even-power"} {
		series := res.PerBudgeter[name]
		fmt.Printf("\nBudgeter: %s\n%-12s", name, "budget (W)")
		for _, s := range series {
			fmt.Printf("  %-8s", s.Name[:minInt(8, len(s.Name))])
		}
		fmt.Println()
		for i := 0; i < len(series[0].X); i += 2 {
			fmt.Printf("%-12.0f", series[0].X[i])
			for _, s := range series {
				fmt.Printf("  %6.1f%%", 100*s.Y[i])
			}
			fmt.Println()
		}
	}
}

func fig5() {
	results := experiments.Fig5(experiments.Fig5Config{})
	fmt.Println("Fig. 5 — misclassification cost (slowdown %, per policy)")
	for _, scr := range results {
		fmt.Printf("\nScenario: %s (unknown job assumed %s; %d vs %d nodes)\n",
			scr.Scenario.Name, scr.Scenario.AssumedType, scr.Scenario.UnknownNodes, scr.Scenario.KnownNodes)
		for _, line := range scr.Lines {
			fmt.Printf("  policy %-18s", line.Policy)
			for _, s := range line.PerType {
				mid := len(s.Y) / 2
				fmt.Printf("  %s @mid-budget %5.1f%%", s.Name, 100*s.Y[mid])
			}
			fmt.Println()
		}
	}
}

func sharedCap(title string, rows []experiments.SharedCapRow, err error) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(title)
	for _, row := range rows {
		fmt.Printf("  %-34s", row.Policy)
		var ids []string
		for id := range row.MeanSlowdown {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("  %s %5.1f%% ± %4.1f%%", id, 100*row.MeanSlowdown[id], 100*row.StdDev[id])
		}
		fmt.Println()
	}
}

func fig6() {
	rows, err := experiments.Fig6(experiments.Fig6Config{Trials: trials(3), Seed: *seed, Parallel: *parallel})
	sharedCap("Fig. 6 — BT + SP under a shared 840 W budget (slowdown vs no cap)", rows, err)
}

func fig7() {
	rows, err := experiments.Fig7(experiments.Fig6Config{Trials: trials(3), Seed: *seed, Parallel: *parallel})
	sharedCap("Fig. 7 — two BT instances, one possibly misclassified as IS", rows, err)
}

func fig8() {
	rows, err := experiments.Fig8(experiments.Fig6Config{Trials: trials(6), Seed: *seed, Parallel: *parallel})
	sharedCap("Fig. 8 — two SP instances, one possibly misclassified as EP", rows, err)
}

func fig9() {
	res, err := experiments.Fig9(experiments.Fig9Config{Horizon: horizon(time.Hour), Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 9 — hour-long moving-target tracking (16 nodes, 2.3–4.5 kW)")
	fmt.Printf("  jobs completed: %d\n", res.Jobs)
	fmt.Printf("  mean |target − measured|: %s\n", res.Summary.MeanAbsErr)
	fmt.Printf("  90th percentile error: %.1f%% of reserve (paper: <17%% typical, <24%% worst)\n", 100*res.P90Err)
	fmt.Printf("  ≤30%% error ≥90%% of time: %v\n", res.Summary.WithinConstraint)
	step := len(res.Tracking) / 20
	if step < 1 {
		step = 1
	}
	fmt.Printf("  %-8s  %-10s  %-10s\n", "t (s)", "target", "measured")
	for i := 0; i < len(res.Tracking); i += step {
		p := res.Tracking[i]
		fmt.Printf("  %-8.0f  %-10s  %-10s\n",
			p.Time.Sub(res.Tracking[0].Time).Seconds(), p.Target, p.Measured)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteCSV(f, res.Tracking); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  full series written to %s\n", *csvPath)
	}
}

func fig10() {
	rows, err := experiments.Fig10(experiments.Fig10Config{Seed: *seed, Horizon: horizon(time.Hour), Parallel: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 10 — mean slowdown per type under time-varying caps (± 95% CI)")
	var names []string
	for n := range rows[0].MeanSlowdown {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("  %-16s", "policy")
	for _, n := range names {
		fmt.Printf("  %-16s", n)
	}
	fmt.Println("  P90 track err")
	for _, row := range rows {
		fmt.Printf("  %-16s", row.Policy)
		for _, n := range names {
			fmt.Printf("  %6.1f%% ± %4.1f%%", 100*row.MeanSlowdown[n], 100*row.CI95[n])
		}
		fmt.Printf("  %5.1f%%\n", 100*row.P90Err)
	}
}

func fig11() {
	cfg := experiments.Fig11Config{Seed: *seed, Parallel: *parallel}
	if *quick {
		cfg.Nodes = 200
		cfg.Trials = 2
		cfg.Horizon = 15 * time.Minute
		cfg.NodeScale = 5
	}
	levels, err := experiments.Fig11(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 11 — 90th percentile QoS degradation vs performance variation")
	fmt.Println("(1000 nodes, 6 types × 25 nodes, 75% utilization, 10 trials; QoS target 5)")
	var names []string
	for n := range levels[0].P90QoSByType {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("  %-10s", "level")
	for _, n := range names {
		fmt.Printf("  %-14s", n)
	}
	fmt.Println("  track ok")
	for _, lvl := range levels {
		fmt.Printf("  ±%-8.1f%%", 100*lvl.Level)
		for _, n := range names {
			fmt.Printf("  %5.2f ± %4.2f ", lvl.P90QoSByType[n], lvl.CI90ByType[n])
		}
		fmt.Printf("  %3.0f%%\n", 100*lvl.TrackOKFraction)
	}
}

func qos() {
	r := experiments.QueueTraceStat(*seed)
	fmt.Println("§5.2 — synthetic month-long queue trace")
	fmt.Printf("  90th percentile wait/exec ratio: %.1f (paper: > 22)\n", r)
	fmt.Println("  ⇒ the experiments' Q = 5 at 90% target is more aggressive than the trace")
}

func train() {
	iters := 30
	nodes := 100
	if *quick {
		iters, nodes = 10, 50
	}
	res, err := experiments.TrainBid(*seed, nodes, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§4.4 — AQA bid training against the tabular simulator")
	fmt.Printf("  chosen bid: average %s, reserve %s\n", res.Bid.AvgPower, res.Bid.Reserve)
	fmt.Printf("  evaluation: QoS90 %.2f (≤5), tracking ok=%v, cost $%.2f\n",
		res.Eval.QoS90, res.Eval.TrackOK, res.Eval.Cost)
	var names []string
	for n := range res.Weights {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  queue weight %-10s %.2f\n", n, res.Weights[n])
	}
}

func ablate() {
	fmt.Println("Ablation — default-model policy risk allocation (even-slowdown, 2000 W, EP/FT?/IS)")
	for _, o := range experiments.AblateDefaultPolicy(2000) {
		fmt.Printf("  %-24s unknown job %5.1f%%   sensitive co-job %5.1f%%\n",
			o.Policy, 100*o.UnknownSlowdown, 100*o.SensitiveSlowdown)
	}
	fmt.Println("\nAblation — modeler retrain threshold (BT-as-IS recovery scenario)")
	thresholds := []int{5, 10, 50}
	if *quick {
		thresholds = []int{10, 10000}
	}
	points, err := experiments.AblateRetrainThreshold(*seed, thresholds)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("  threshold %-6.0f misclassified-job slowdown %5.1f%%  trained=%v\n",
			p.Setting, 100*p.MisclassifiedSlowdown, p.Trained)
	}
}

func hierTable() {
	points, err := experiments.HierFidelity(*seed, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§8 — hierarchical allocation fidelity vs rack count (catalog job mix)")
	fmt.Printf("  %-8s  %-22s  %-22s  %s\n", "racks", "quadratic-scheme err", "exact-scheme err", "msgs/rebudget")
	for _, p := range points {
		fmt.Printf("  %-8d  %-22.4f  %-22.6f  %d\n", p.Racks, p.QuadraticErr, p.ExactErr, p.Messages)
	}
	fmt.Println("  (err = worst per-job slowdown deviation from the flat allocation)")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
