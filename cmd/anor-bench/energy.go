package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
)

// energy is the per-job energy accounting report: one deterministic
// 1000-node run with the ledger attached, printed as a joules table
// plus the conservation-audit line.
func energy() {
	cfg := experiments.EnergyConfig{Seed: *seed}
	if *quick {
		cfg.Nodes = 200
		cfg.Horizon = 2 * time.Minute
	}
	snap, res, err := experiments.EnergyReport(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy accounting over %d tracked seconds (%d jobs done, %d unfinished):\n",
		len(res.Tracking), len(res.Jobs), res.Unfinished)
	audit := "audit ok (bit-exact)"
	if !snap.Conserved {
		audit = fmt.Sprintf("AUDIT BROKEN Δ=%dµJ errs=%d", snap.ConservationDeltaMicroJ, snap.Errors)
	}
	fmt.Printf("total %.0f J = jobs %.0f J + idle %.0f J — %s\n",
		snap.TotalJoules, snap.JobsJoules, snap.IdleJoules, audit)
	fmt.Printf("%-12s %-10s %5s %12s %9s %9s %7s %6s %9s\n",
		"job", "type", "nodes", "joules", "avg W", "peak W", "thr s", "stint", "slowdown")
	for _, j := range snap.Top(15) {
		fmt.Printf("%-12s %-10s %5d %12.0f %9.1f %9.1f %7.0f %6d %9.2f\n",
			j.ID, j.Type, j.Nodes, j.Joules, j.AvgWatts, j.PeakWatts, j.ThrottledS, j.Stints, j.Slowdown)
	}
}
