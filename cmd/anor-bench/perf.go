package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// benchEntry is one simulator throughput record in the perf-json file.
type benchEntry struct {
	Date   string `json:"date"`
	Engine string `json:"engine"`
	CPU    string `json:"cpu,omitempty"`
	experiments.SimPerfResult
}

// benchFile is the perf-json document: an append-only history of
// simulator throughput measurements, oldest first.
type benchFile struct {
	Description string       `json:"description"`
	Entries     []benchEntry `json:"entries"`
}

const benchFileDescription = "Tabular-simulator throughput history. Refresh with: go run ./cmd/anor-bench -perf-json BENCH_sim.json perf"

// perfMatrix is the (nodes, maxprocs) grid perf measures and check gates
// on: the paper's 1000-node scale, 10× that, the 100k-node scale the
// multi-core runtime targets — each single-core and at 4 workers — and a
// single-core 1M-node row proving the completion calendar holds up three
// orders of magnitude past the paper. Quick mode (CI) stays bounded by
// skipping the 1M row; the calendar makes the 100k cells cheap enough to
// gate on every push.
var perfMatrix = []struct {
	nodes    int
	maxprocs int
}{
	{1000, 1}, {1000, 4},
	{10000, 1}, {10000, 4},
	{100000, 1}, {100000, 4},
	{1000000, 1},
}

// perf measures simulator throughput over the nodes × maxprocs matrix,
// printing one row per combination. With -perf-json the results are
// appended to the given history file (created if missing). -quick drops
// to one repeat and skips the 100k rows.
func perf() {
	repeats := 3
	if *quick {
		repeats = 1
	}
	fmt.Println("Simulator throughput (§5.6 tabular simulator, 75% utilization, best of repeats)")
	fmt.Printf("%-8s  %-8s  %-12s  %-10s  %-12s  %-11s  %s\n",
		"nodes", "maxprocs", "steps/s", "ns/step", "bytes/step", "allocs/step", "steps/run")
	var entries []benchEntry
	for _, cell := range perfMatrix {
		if *quick && cell.nodes > 100000 {
			continue
		}
		res, err := experiments.SimPerf(experiments.SimPerfConfig{
			Nodes: cell.nodes, Repeats: repeats, Seed: *seed, MaxProcs: cell.maxprocs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d  %-8d  %-12.0f  %-10.0f  %-12.1f  %-11.2f  %d\n",
			res.Nodes, res.MaxProcs, res.StepsPerSec, res.NsPerStep, res.BytesPerStep, res.AllocsPerStep, res.Steps)
		// One decimal is already far inside run-to-run noise; rounding keeps
		// the checked-in history diffable instead of 15 significant digits.
		res.StepsPerSec = round1(res.StepsPerSec)
		res.NsPerStep = round1(res.NsPerStep)
		res.BytesPerStep = round1(res.BytesPerStep)
		entries = append(entries, benchEntry{
			Date:          time.Now().UTC().Format("2006-01-02"),
			Engine:        "calendar",
			CPU:           cpuModel(),
			SimPerfResult: res,
		})
	}
	if *perfJSON == "" {
		return
	}
	if err := appendBenchEntries(*perfJSON, entries); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nappended %d entries to %s\n", len(entries), *perfJSON)
}

// round1 rounds to one decimal place for the JSON history.
func round1(v float64) float64 { return math.Round(v*10) / 10 }

// appendBenchEntries loads the history file (tolerating a missing one),
// appends the new measurements, and writes it back.
func appendBenchEntries(path string, entries []benchEntry) error {
	var doc benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc.Description = benchFileDescription
	doc.Entries = append(doc.Entries, entries...)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// cpuModel best-effort reads the CPU model string for the measurement
// record; empty when the platform does not expose /proc/cpuinfo.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
