// Command anor-bench regenerates every table and figure of the paper's
// evaluation (§6) from the reproduction's own stack, printing the same
// rows and series the paper plots.
//
// Usage:
//
//	anor-bench fig3      # job-type power-performance curves
//	anor-bench fit       # §5.1 precharacterization R² table
//	anor-bench fig4      # budgeter comparison under shared budgets
//	anor-bench fig5      # misclassification cost analysis
//	anor-bench fig6      # BT+SP shared-cap hardware-emulation study
//	anor-bench fig7      # 2×BT misclassification study
//	anor-bench fig8      # 2×SP misclassification study
//	anor-bench fig9      # hour-long moving-target tracking
//	anor-bench fig10     # capping-technique comparison over the hour
//	anor-bench fig11     # 1000-node performance-variation study
//	anor-bench qos       # §5.2 queue-trace wait/exec statistic
//	anor-bench train     # AQA bid training (§4.4)
//	anor-bench perf      # tabular-simulator throughput (see BENCH_sim.json)
//	anor-bench energy    # per-job energy accounting report with conservation audit
//	anor-bench check     # perf-regression gate against BENCH_sim.json (CI)
//	anor-bench all       # everything above (perf and check excluded)
package main

import (
	"flag"
	"fmt"
	"os"
)

var (
	seed     = flag.Uint64("seed", 1, "experiment seed")
	quick    = flag.Bool("quick", false, "reduced trial counts and horizons for a fast pass")
	csvPath  = flag.String("csv", "", "write fig9's tracking series to this CSV file")
	parallel = flag.Int("parallel", 0, "concurrent trials per experiment (0 = GOMAXPROCS); results are identical at any setting")
	perfJSON = flag.String("perf-json", "", "append perf's measurements to this JSON history file (see BENCH_sim.json)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: anor-bench [flags] {fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fit|qos|train|perf|energy|check|all}")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	runners := map[string]func(){
		"fig3": fig3, "fig4": fig4, "fig5": fig5,
		"fig6": fig6, "fig7": fig7, "fig8": fig8,
		"fig9": fig9, "fig10": fig10, "fig11": fig11,
		"fit": fit, "qos": qos, "train": train, "ablate": ablate, "hier": hierTable,
		"perf": perf, "energy": energy, "check": check,
	}
	if cmd == "all" {
		for _, name := range []string{"fig3", "fit", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "qos", "train", "ablate", "hier"} {
			fmt.Printf("\n════════ %s ════════\n", name)
			runners[name]()
		}
		return
	}
	run, ok := runners[cmd]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	run()
}
