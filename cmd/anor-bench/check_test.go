package main

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func baselineEntry() benchEntry {
	return benchEntry{
		Date: "2026-08-01", Engine: "dense-index", CPU: "TestCPU v1",
		SimPerfResult: experiments.SimPerfResult{
			Nodes: 10000, StepsPerSec: 80000, AllocsPerStep: 0.10,
			GoVersion: runtime.Version(), MaxProcs: 1,
		},
	}
}

func measurement(stepsPerSec, allocsPerStep float64) experiments.SimPerfResult {
	return experiments.SimPerfResult{
		Nodes: 10000, StepsPerSec: stepsPerSec, AllocsPerStep: allocsPerStep,
		GoVersion: runtime.Version(), MaxProcs: 1,
	}
}

// TestCompareBenchFailsOnInjectedRegressions proves the gate actually
// gates: a steps/s drop past tolerance on the same hardware and any real
// allocs/step growth each produce a hard failure.
func TestCompareBenchFailsOnInjectedRegressions(t *testing.T) {
	base := baselineEntry()

	// Injected 40% throughput regression, same CPU: must fail.
	failures, _ := compareBench(measurement(48000, 0.10), base.CPU, base, 0.25, 0.5)
	if len(failures) != 1 || !strings.Contains(failures[0], "steps/s dropped") {
		t.Errorf("40%% speed regression not failed: %v", failures)
	}

	// Injected allocation growth: must fail regardless of CPU match.
	failures, _ = compareBench(measurement(80000, 3.5), "OtherCPU", base, 0.25, 0.5)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/step grew") {
		t.Errorf("alloc growth not failed: %v", failures)
	}

	// Both at once: two failures.
	failures, _ = compareBench(measurement(10000, 9), base.CPU, base, 0.25, 0.5)
	if len(failures) != 2 {
		t.Errorf("combined regression produced %d failures, want 2: %v", len(failures), failures)
	}
}

func TestCompareBenchPassesWithinTolerance(t *testing.T) {
	base := baselineEntry()

	// 10% slower, same CPU, allocs flat: inside the 25% tolerance.
	failures, notes := compareBench(measurement(72000, 0.10), base.CPU, base, 0.25, 0.5)
	if len(failures) != 0 || len(notes) != 0 {
		t.Errorf("in-tolerance run flagged: failures=%v notes=%v", failures, notes)
	}

	// Faster with slightly fewer allocs: clean pass.
	failures, _ = compareBench(measurement(95000, 0.05), base.CPU, base, 0.25, 0.5)
	if len(failures) != 0 {
		t.Errorf("improvement flagged: %v", failures)
	}
}

// TestCompareBenchCrossMachineSpeedIsAdvisory pins the gate's noise
// policy: wall-clock throughput from a different CPU (or a baseline that
// predates CPU recording) downgrades to advisory notes, while allocation
// growth stays a hard failure — it is machine-independent.
func TestCompareBenchCrossMachineSpeedIsAdvisory(t *testing.T) {
	base := baselineEntry()

	failures, notes := compareBench(measurement(30000, 0.10), "DifferentCPU", base, 0.25, 0.5)
	if len(failures) != 0 {
		t.Errorf("cross-CPU speed delta failed hard: %v", failures)
	}
	if len(notes) != 2 || !strings.Contains(notes[0], "no comparable baseline") ||
		!strings.Contains(notes[1], "steps/s dropped") {
		t.Errorf("cross-CPU speed delta not noted: %v", notes)
	}

	noCPU := base
	noCPU.CPU = ""
	failures, notes = compareBench(measurement(30000, 0.10), "TestCPU v1", noCPU, 0.25, 0.5)
	if len(failures) != 0 || len(notes) != 2 {
		t.Errorf("unknown-CPU baseline: failures=%v notes=%v", failures, notes)
	}
}

// TestCompareBenchAdvisoryWithoutComparableBaseline pins the explicit
// signal: even with no speed regression at all, a baseline from a
// different CPU or toolchain yields exactly one advisory note saying the
// speed gate is not being enforced.
func TestCompareBenchAdvisoryWithoutComparableBaseline(t *testing.T) {
	base := baselineEntry()

	// Same speed, different CPU: one advisory, no failures.
	failures, notes := compareBench(measurement(80000, 0.10), "DifferentCPU", base, 0.25, 0.5)
	if len(failures) != 0 {
		t.Errorf("clean cross-CPU run failed: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "no comparable baseline") {
		t.Errorf("missing no-comparable-baseline advisory: %v", notes)
	}

	// Different Go toolchain, same CPU: also not comparable.
	oldGo := base
	oldGo.GoVersion = "go1.0"
	_, notes = compareBench(measurement(80000, 0.10), base.CPU, oldGo, 0.25, 0.5)
	if len(notes) != 1 || !strings.Contains(notes[0], "no comparable baseline") {
		t.Errorf("toolchain mismatch not advisory: %v", notes)
	}

	// Fully comparable baseline: silent.
	if _, notes := compareBench(measurement(80000, 0.10), base.CPU, base, 0.25, 0.5); len(notes) != 0 {
		t.Errorf("comparable in-tolerance run produced notes: %v", notes)
	}
}

func TestLatestBaselinePicksNewestMatchingCell(t *testing.T) {
	old := baselineEntry()
	old.StepsPerSec = 1
	newer := baselineEntry()
	newer.Date = "2026-08-07"
	other := baselineEntry()
	other.MaxProcs = 4
	entries := []benchEntry{old, newer, other}

	got, ok := latestBaseline(entries, 10000, 1)
	if !ok || got.Date != "2026-08-07" {
		t.Errorf("latestBaseline = %+v, %v", got, ok)
	}
	if _, ok := latestBaseline(entries, 555, 1); ok {
		t.Error("nonexistent cell matched")
	}
}
