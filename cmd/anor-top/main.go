// Command anor-top is the live fleet dashboard: it polls the admin
// endpoints (/timeseries rollup JSON plus /metrics) of any mix of
// anord, anor-endpoint, and anor-sim processes and renders
// power-vs-target, tracking error, queue depth, eviction/reconnect
// counters, and decision-to-enforcement latency as terminal sparklines.
//
// Usage:
//
//	anor-top :9790 localhost:9791            # live, redrawn every -every
//	anor-top -once :9790                     # one snapshot to stdout
//	anor-top -replay run.rec                 # inspect a flight-recorder file
//	anor-top -series power :9790             # only series containing "power"
//
// Daemons running with an energy ledger (/accounting) or an SLO engine
// (/slo, the -slo flag) additionally get a per-job energy panel and a
// rule-verdict panel; replayed recordings derive the alert panel from
// the recorded slo_fired series.
//
// Daemons serve the endpoints when started with -telemetry (anord,
// anor-endpoint: on their -metrics address; anor-sim: on its -telemetry
// address); -replay needs no live process at all and renders the same
// dashboard from a file recorded with -record.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleetview"
	"repro/internal/telemetry"
)

func main() {
	once := flag.Bool("once", false, "render one snapshot to stdout and exit (no cursor control; safe for pipes)")
	replay := flag.String("replay", "", "render a recorded flight-recorder file instead of polling live daemons")
	every := flag.Duration("every", 2*time.Second, "poll/redraw interval in live mode")
	step := flag.Int64("step", 0, "rollup resolution in seconds (0 = finest the daemon retains)")
	last := flag.Int("last", 120, "buckets per series (0 = all retained)")
	width := flag.Int("width", 100, "render width in columns")
	series := flag.String("series", "", "show only series whose name contains this substring")
	flag.Parse()

	if *replay != "" {
		src := replaySource(*replay, *step, *last)
		src.Snap = fleetview.Filter(src.Snap, *series)
		fleetview.Render(os.Stdout, []fleetview.Source{src}, *width)
		if src.Err != nil {
			os.Exit(1)
		}
		return
	}

	addrs := flag.Args()
	if len(addrs) == 0 {
		log.Fatal("anor-top: need at least one admin address (host:port) or -replay FILE")
	}
	clients := make([]*fleetview.Client, len(addrs))
	for i, a := range addrs {
		clients[i] = &fleetview.Client{Base: a}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		if !render(ctx, os.Stdout, clients, addrs, *step, *last, *width, *series) {
			os.Exit(1)
		}
		return
	}
	for {
		fmt.Print("\x1b[H\x1b[2J") // home + clear: steady full-screen redraw
		render(ctx, os.Stdout, clients, addrs, *step, *last, *width, *series)
		fmt.Printf("every %s — ctrl-c to quit\n", *every)
		select {
		case <-ctx.Done():
			return
		case <-time.After(*every):
		}
	}
}

// render polls every target and draws the dashboard, reporting whether
// at least one target answered with a non-empty series set.
func render(ctx context.Context, w *os.File, clients []*fleetview.Client, addrs []string, step int64, last, width int, series string) bool {
	sources := make([]fleetview.Source, len(clients))
	ok := false
	for i, c := range clients {
		src := fleetview.Source{Name: addrs[i]}
		snap, err := c.Timeseries(ctx, step, last)
		if err != nil {
			src.Err = err
		} else {
			src.Snap = fleetview.Filter(snap, series)
			// /metrics, /accounting, and /slo enrich the panel but a
			// daemon not serving them is not down.
			src.Prom, _ = c.Metrics(ctx)
			src.Acct, _ = c.Accounting(ctx)
			src.SLO, _ = c.SLO(ctx)
			if len(snap.Series) > 0 {
				ok = true
			}
		}
		sources[i] = src
	}
	fleetview.Render(w, sources, width)
	return ok
}

// replaySource rebuilds a rollup store from a flight-recorder file and
// snapshots it exactly as /timeseries would have served it, stamped at
// the recording's final sample.
func replaySource(path string, step int64, last int) fleetview.Source {
	src := fleetview.Source{Name: path}
	store, n, err := telemetry.ReplayFile(path)
	if err != nil {
		src.Err = err
		return src
	}
	var end int64
	for _, name := range store.Names() {
		for _, p := range store.Series(name).Snapshot(0, 0) {
			if p.T > end {
				end = p.T
			}
		}
	}
	src.Snap = store.SnapshotAt(time.Unix(end, 0), "", step, last)
	log.Printf("anor-top: replayed %d samples across %d series from %s", n, len(store.Names()), path)
	return src
}
