// Command anor-endpoint is the ANOR job-tier endpoint process (§4): one
// runs per job. It stands up the job's GEOPM runtime over simulated
// node hardware, runs the selected synthetic benchmark with epoch
// instrumentation, connects to the cluster manager (anord) over TCP,
// relays power budgets down to the agents, and streams the online-fitted
// power-performance model back up.
//
// With -metrics it serves /metrics, /healthz, and pprof, exposing epoch
// rates, cap-application latency, and model-fit residuals; -events
// streams epoch-batch/model-refit/cap-fan-out events as JSONL;
// -telemetry retains job-labelled power/cap/epoch-rate rollup series as
// /timeseries, and -record tees them into a flight-recorder file. An
// energy ledger accrues this job's joules from every sample, serves
// /accounting on the -metrics address, and prints an energy line at exit.
//
// Usage:
//
//	anor-endpoint -cluster localhost:9700 -job j1 -bench bt.D.81 \
//	              -claim is.D.32 -nodes 2 -metrics :9791
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/endpointd"
	"repro/internal/geopm"
	"repro/internal/ledger"
	"repro/internal/modeler"
	"repro/internal/nodesim"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	cluster := flag.String("cluster", "localhost:9700", "cluster manager address")
	jobID := flag.String("job", "", "job ID (required)")
	benchName := flag.String("bench", "is.D.32", "benchmark type to run")
	claim := flag.String("claim", "", "type announced to the cluster (default: the true type; set for misclassification experiments)")
	nodes := flag.Int("nodes", 0, "node count (default: the type's)")
	variation := flag.Float64("variation", 1.0, "performance-variation multiplier")
	noise := flag.Float64("noise", 0.01, "per-epoch noise standard deviation")
	seed := flag.Uint64("seed", 1, "noise seed")
	reconnectMin := flag.Duration("reconnect-min", 500*time.Millisecond, "minimum backoff between cluster re-dials")
	reconnectMax := flag.Duration("reconnect-max", 10*time.Second, "maximum backoff between cluster re-dials")
	hold := flag.Duration("hold", 0, "hold the last cap this long while disconnected before the failsafe cap (default 3x report period)")
	failsafeCap := flag.Float64("failsafe-cap", 0, "per-node failsafe cap in watts enforced after -hold expires disconnected (default: node minimum cap)")
	readTimeout := flag.Duration("read-timeout", 0, "per-receive wire deadline; a silent cluster past it counts as a dropped link; 0 disables")
	statePath := flag.String("state-file", "", "durable endpoint state file: persists the highest controller epoch and the last applied cap, which is re-imposed before the first dial after a restart; empty disables")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz, and pprof on this address; empty disables")
	eventsOut := flag.String("events", "", "stream structured JSONL events to this file; empty disables")
	telemetryOn := flag.Bool("telemetry", false, "retain multi-resolution rollup series and serve /timeseries on the -metrics address")
	recordOut := flag.String("record", "", "append every telemetry sample to this binary flight-recorder file (implies -telemetry)")
	verbose := flag.Bool("v", false, "enable debug logging")
	flag.Parse()

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level, "anor-endpoint").WithJob(*jobID)
	fatalf := func(format string, args ...any) {
		logger.Errorf(format, args...)
		os.Exit(1)
	}

	if *jobID == "" {
		fatalf("-job is required")
	}
	typ, err := workload.ByName(*benchName)
	if err != nil {
		fatalf("%v", err)
	}
	nNodes := *nodes
	if nNodes <= 0 {
		nNodes = typ.Nodes
	}
	claimed := *claim
	if claimed == "" {
		claimed = typ.Name
	}

	var store *telemetry.Store
	if *telemetryOn || *recordOut != "" {
		store = telemetry.NewStore()
		if *recordOut != "" {
			f, err := os.Create(*recordOut)
			if err != nil {
				fatalf("creating flight-recorder file: %v", err)
			}
			defer f.Close()
			rec := telemetry.NewRecorder(f)
			store.SetRecorder(rec)
			defer rec.Flush()
		}
	}
	// The job-tier energy ledger: one account (this job) accrued from
	// every telemetry sample, served as /accounting alongside /metrics.
	led := ledger.New()
	var registry *obs.Registry
	if *metricsAddr != "" {
		registry = obs.NewRegistry()
		var mounts []obs.Mount
		if store != nil {
			mounts = append(mounts, obs.Mount{Pattern: "/timeseries", Handler: store.Handler()})
		}
		mounts = append(mounts, obs.Mount{Pattern: "/accounting",
			Handler: led.Handler(func() int64 { return time.Now().UnixMilli() })})
		admin, err := obs.StartAdmin(*metricsAddr, registry, nil, mounts...)
		if err != nil {
			fatalf("%v", err)
		}
		defer admin.Close()
		logger.Infof("admin endpoint on http://%s (/metrics, /healthz, /timeseries, /accounting, /debug/pprof/)", admin.Addr())
	}
	var tracer *obs.Tracer
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatalf("creating events file: %v", err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f, fmt.Sprintf("%s-%d", *jobID, os.Getpid()))
		defer tracer.Flush()
	}
	if store != nil {
		sampler := telemetry.StartSampler(telemetry.SamplerConfig{
			Store: store, Registry: registry, Tracer: tracer,
		})
		defer sampler.Close()
	}

	clk := clock.Real{}
	pios := make([]*geopm.PlatformIO, nNodes)
	for i := range pios {
		node := nodesim.NewNode(i, nodesim.Config{Clock: clk, NoiseStd: 0.01, Seed: *seed})
		node.SetDemand(typ.PMax)
		pios[i] = geopm.NewPlatformIO(node)
	}
	ep := geopm.NewEndpoint()
	rt, err := geopm.NewRuntime(geopm.RuntimeConfig{
		JobID: *jobID, PIOs: pios, Endpoint: ep, Clock: clk,
		Metrics: registry, Tracer: tracer,
	})
	if err != nil {
		fatalf("%v", err)
	}
	mdl, err := modeler.New(modeler.Config{Default: typ.Model()})
	if err != nil {
		fatalf("%v", err)
	}

	epd, err := endpointd.New(endpointd.Config{
		JobID:         *jobID,
		TypeName:      claimed,
		Nodes:         nNodes,
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", *cluster) },
		GEOPM:         ep,
		Modeler:       mdl,
		Clock:         clk,
		Metrics:       registry,
		Tracer:        tracer,
		Telemetry:     store,
		Ledger:        led,
		Log:           logger,
		ReconnectMin:  *reconnectMin,
		ReconnectMax:  *reconnectMax,
		ReconnectSeed: *seed,
		HoldDuration:  *hold,
		FailsafeCap:   units.Power(*failsafeCap),
		ReadTimeout:   *readTimeout,
		StatePath:     *statePath,
	})
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	jobCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := rt.Run(jobCtx); err != nil {
			logger.Errorf("runtime: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := epd.Run(jobCtx); err != nil && jobCtx.Err() == nil {
			logger.Errorf("endpoint: %v", err)
			cancel()
		}
	}()

	logger.Infof("running %s (claimed %s) on %d nodes (uncapped ≈%s)",
		typ.Name, claimed, nNodes, time.Duration(typ.BaseSeconds*float64(time.Second)))
	exec := &workload.Executor{
		Type:      typ,
		Clock:     clk,
		Cap:       rt.Cap,
		OnEpoch:   func(int) { rt.ProfEpoch() },
		Variation: *variation,
		Noise:     stats.NewRNG(*seed),
		NoiseStd:  *noise,
	}
	res, err := exec.Run(ctx)
	rt.RecordAppTotals(res.AppSeconds, res.Epochs)
	cancel()
	wg.Wait()
	if err != nil {
		logger.Errorf("benchmark: %v", err)
	}

	fmt.Print(rt.Report())
	base := typ.BaseSeconds * *variation
	if base > 0 && res.AppSeconds > 0 {
		fmt.Printf("Slowdown vs uncapped: %.1f%%\n", 100*(res.AppSeconds/base-1))
	}
	acct := led.SnapshotAt(time.Now().UnixMilli())
	for _, j := range acct.Jobs {
		fmt.Printf("Energy: %.0f J (avg %.1f W, peak %.1f W, %.0f s throttled)\n",
			j.Joules, j.AvgWatts, j.PeakWatts, j.ThrottledS)
	}
}
